// Package npb implements the five OpenMP NAS Parallel Benchmarks of the
// paper's evaluation — BT, CG, FT, SP and MG — against the simulated memory
// system. Each kernel performs its real computation (CG really solves a
// sparse system, FT really transforms and inverts) while every array access
// is driven through the TLB/cache model, so the DTLB behaviour the paper
// studies emerges from the kernels' genuine access patterns:
//
//   - BT: sequential sweeps over 5x5 blocks of 8-byte arrays (paper §4.2),
//     touching many distinct arrays per point.
//   - CG: random sparse-matrix rows gathered from a vector whose span
//     exceeds the 4 KB TLB reach.
//   - FT: many small DFTs (unit stride) plus a pencil pass whose stride
//     exceeds a 4 KB page.
//   - SP: plane-strided line solves whose reuse distance exceeds the 4 KB
//     TLB.
//   - MG: V-cycles over coarse and fine grids testing short and long
//     distance data movement.
//
// Problem classes: the paper runs class B (371 MB – 2.4 GB). Simulating
// billions of accesses per run is infeasible, so our classes T/S/W/A are
// scaled versions whose footprints preserve the class-B relationships to the
// TLB reaches of the two platforms (Opteron: 2.2 MB at 4 KB, 16 MB at 2 MB;
// Xeon: 768 KB at 4 KB, 64 MB at 2 MB): every class-A working set exceeds
// the 4 KB reach by orders of magnitude, CG/SP/MG fit in the 2 MB reach, and
// FT exceeds the Opteron's 16 MB 2 MB-page reach just as class B does.
package npb

import (
	"context"
	"fmt"
	"math"
	"sort"

	"hugeomp/internal/core"
	"hugeomp/internal/faultinject"
	"hugeomp/internal/machine"
	"hugeomp/internal/omp"
	"hugeomp/internal/profile"
	"hugeomp/internal/units"
)

// Class is a scaled problem class.
type Class uint8

const (
	ClassT Class = iota // tiny: unit tests
	ClassS              // small: fast integration tests
	ClassW              // workstation: quick experiments
	ClassA              // full reproduction runs (the paper's class B analogue)
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassS:
		return "S"
	case ClassW:
		return "W"
	case ClassA:
		return "A"
	default:
		return "T"
	}
}

// ParseClass converts "T"/"S"/"W"/"A".
func ParseClass(s string) (Class, error) {
	switch s {
	case "T", "t":
		return ClassT, nil
	case "S", "s":
		return ClassS, nil
	case "W", "w":
		return ClassW, nil
	case "A", "a":
		return ClassA, nil
	}
	return 0, fmt.Errorf("npb: unknown class %q", s)
}

// Kernel is one benchmark.
type Kernel interface {
	// Name returns the benchmark's NPB name (BT, CG, FT, SP, MG).
	Name() string
	// Setup allocates and initialises the kernel's globals on sys.
	Setup(sys *core.System, class Class) error
	// Run executes iterations timesteps on the runtime.
	Run(rt *omp.RT, iterations int) error
	// Verify checks the numerical result of the last Run.
	Verify() error
	// DefaultIterations returns the timestep count for a class.
	DefaultIterations(class Class) int
	// PaperFootprint returns the paper's Table 2 class-B instruction and
	// data footprints in bytes (for the Table 2 reproduction).
	PaperFootprint() (instr, data int64)
}

// New returns a fresh kernel by name.
func New(name string) (Kernel, error) {
	switch name {
	case "BT", "bt":
		return NewBT(), nil
	case "CG", "cg":
		return NewCG(), nil
	case "FT", "ft":
		return NewFT(), nil
	case "SP", "sp":
		return NewSP(), nil
	case "MG", "mg":
		return NewMG(), nil
	}
	return nil, fmt.Errorf("npb: unknown kernel %q", name)
}

// Names lists the kernels in the paper's order.
func Names() []string { return []string{"BT", "CG", "FT", "SP", "MG"} }

// RunConfig configures one benchmark run.
type RunConfig struct {
	Model      machine.Model
	Threads    int
	Policy     core.PagePolicy
	Class      Class
	Iterations int // 0 = kernel default
	Sharing    machine.SharingMode
	Barrier    omp.BarrierAlgo
	Hugetlb    int // hugetlbfs mode; 0 = preallocate

	// HugePages forwards to core.Config.HugePages: 0 sizes the pool to the
	// shared region, core.NoHugePages forces the 4 KB degraded path.
	HugePages int
	// Fault arms deterministic fault injection for the whole run (nil = off).
	Fault *faultinject.Plan

	// Ctx, if non-nil, bounds the run: the kernel observes cancellation at
	// its next checkpoint (iteration boundaries and in-region chunk grabs)
	// and Run returns an error wrapping omp.ErrAborted and the context's
	// error. Excluded from JSON encoding so memoization keys never depend
	// on a request's deadline plumbing, only on what is simulated.
	Ctx context.Context `json:"-"`
}

// Result reports one benchmark run.
type Result struct {
	Kernel   string
	Class    Class
	Model    string
	Threads  int
	Policy   core.PagePolicy
	Cycles   uint64
	Seconds  float64
	Counters profile.Counters
	Regions  []*omp.RegionProfile // per-region profile, most expensive first
	DataMB   float64
	InstrMB  float64

	Degraded bool               // the 2 MB region ran on 4 KB fallback pages
	OS       profile.OSCounters // degraded-path events of this run
}

// Run executes one benchmark end to end: build the system, set up the
// kernel, run, verify, and collect counters.
func Run(k Kernel, cfg RunConfig) (Result, error) {
	res, _, _, err := RunOn(k, cfg)
	return res, err
}

// RunOn is Run returning the assembled system and runtime alongside the
// result, for harnesses that audit post-run state (internal/check invariants
// in cmd/chaos) or read per-context counters. When Run or Verify fails after
// the system was assembled — including a context abort — the system and
// runtime are returned alongside the error so the caller can post-mortem the
// abandoned state (an aborted run must still pass check.All).
func RunOn(k Kernel, cfg RunConfig) (Result, *core.System, *omp.RT, error) {
	shared := sharedBytesFor(cfg.Class)
	sys, err := core.NewSystem(core.Config{
		Model:       cfg.Model,
		Policy:      cfg.Policy,
		Sharing:     cfg.Sharing,
		Barrier:     cfg.Barrier,
		SharedBytes: shared,
		PhysBytes:   4 * shared,
		HugePages:   cfg.HugePages,
		Fault:       cfg.Fault,
	})
	if err != nil {
		return Result{}, nil, nil, fmt.Errorf("npb: system: %w", err)
	}
	if err := k.Setup(sys, cfg.Class); err != nil {
		return Result{}, nil, nil, fmt.Errorf("npb: setup %s: %w", k.Name(), err)
	}
	sys.Seal()
	rt, err := sys.NewRT(cfg.Threads)
	if err != nil {
		return Result{}, nil, nil, err
	}
	if cfg.Ctx != nil {
		rt.Bind(cfg.Ctx)
	}
	iters := cfg.Iterations
	if iters == 0 {
		iters = k.DefaultIterations(cfg.Class)
	}
	if err := k.Run(rt, iters); err != nil {
		return Result{}, sys, rt, fmt.Errorf("npb: run %s: %w", k.Name(), err)
	}
	if err := k.Verify(); err != nil {
		return Result{}, sys, rt, fmt.Errorf("npb: verify %s: %w", k.Name(), err)
	}
	return Result{
		Kernel:   k.Name(),
		Class:    cfg.Class,
		Model:    cfg.Model.Name,
		Threads:  cfg.Threads,
		Policy:   cfg.Policy,
		Cycles:   rt.WallCycles(),
		Seconds:  rt.Seconds(),
		Counters: rt.TotalCounters(),
		Regions:  rt.RegionProfiles(),
		DataMB:   float64(sys.DataFootprint()) / float64(units.MB),
		InstrMB:  float64(sys.InstrFootprint()) / float64(units.MB),
		Degraded: sys.Degraded,
		OS:       sys.OSCounters(),
	}, sys, rt, nil
}

// Checksum extracts the solution fingerprint of a kernel after a run — the
// value the golden tests freeze and the chaos harness compares across fault
// plans (the robustness contract: injected faults may shift performance
// counters, never this number). NaN for an unknown kernel type.
func Checksum(k Kernel) float64 {
	switch v := k.(type) {
	case *CG:
		s := 0.0
		for _, x := range v.z.Data {
			s += x
		}
		return s
	case *SP:
		return v.checksum
	case *BT:
		return v.checksum
	case *MG:
		return v.normF
	case *FT:
		return v.maxErr
	}
	return math.NaN()
}

// sharedBytesFor sizes the shared region per class (largest kernel, FT,
// defines the bound).
func sharedBytesFor(c Class) int64 {
	switch c {
	case ClassS:
		return 16 * units.MB
	case ClassW:
		return 64 * units.MB
	case ClassA:
		return 192 * units.MB
	default:
		return 8 * units.MB
	}
}

// lcg is a small deterministic pseudo-random generator (NPB uses its own
// linear congruential generator for reproducible inputs; so do we).
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2862933555777941757 + 3037000493} }

func (r *lcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 17
}

// float64 in [0,1).
func (r *lcg) float() float64 { return float64(r.next()%(1<<52)) / float64(uint64(1)<<52) }

// intn returns a value in [0, n).
func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

// uniqueSorted draws k distinct values in [0,n) and returns them sorted.
func (r *lcg) uniqueSorted(k, n int) []int {
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := r.intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
