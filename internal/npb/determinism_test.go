package npb

import (
	"math"
	"testing"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
)

// checksum extracts a solution fingerprint from a kernel after a run.
func checksum(k Kernel) float64 { return Checksum(k) }

// TestNumericsIndependentOfPagePolicy: the page policy changes timing only;
// the computed values must be bit-identical across 4K/2M/mixed/transparent.
func TestNumericsIndependentOfPagePolicy(t *testing.T) {
	for _, name := range Names() {
		var ref float64
		for i, policy := range []core.PagePolicy{
			core.Policy4K, core.Policy2M, core.PolicyMixed, core.PolicyTransparent,
		} {
			k, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(k, RunConfig{
				Model: machine.Opteron270(), Threads: 2, Policy: policy, Class: ClassT,
			}); err != nil {
				t.Fatalf("%s/%v: %v", name, policy, err)
			}
			got := checksum(k)
			if i == 0 {
				ref = got
				continue
			}
			if got != ref && !(math.IsNaN(got) && math.IsNaN(ref)) {
				t.Errorf("%s: policy %v changed the numerics: %v != %v", name, policy, got, ref)
			}
		}
	}
}

// TestNumericsIndependentOfMachine: the platform model changes timing only.
func TestNumericsIndependentOfMachine(t *testing.T) {
	for _, name := range Names() {
		var ref float64
		for i, model := range machine.Models() {
			k, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(k, RunConfig{
				Model: model, Threads: 4, Policy: core.Policy4K, Class: ClassT,
			}); err != nil {
				t.Fatalf("%s/%s: %v", name, model.Name, err)
			}
			got := checksum(k)
			if i == 0 {
				ref = got
				continue
			}
			if got != ref {
				t.Errorf("%s: machine %s changed the numerics: %v != %v", name, model.Name, got, ref)
			}
		}
	}
}

// TestThreadCountToleranceForNonReductions: BT and SP have no cross-thread
// reduction inside their timestep loops, so their solutions are bit-identical
// for any thread count. (CG/MG/FT fold reductions whose combine order varies
// with the partition; those are covered with tolerance elsewhere.)
func TestThreadCountToleranceForNonReductions(t *testing.T) {
	for _, name := range []string{"BT", "SP"} {
		var ref []float64
		for _, threads := range []int{1, 2, 4} {
			k, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(k, RunConfig{
				Model: machine.Opteron270(), Threads: threads, Policy: core.Policy4K, Class: ClassT,
			}); err != nil {
				t.Fatal(err)
			}
			var data []float64
			switch v := k.(type) {
			case *BT:
				data = v.u.Data
			case *SP:
				data = v.u.Data
			}
			if ref == nil {
				ref = append([]float64(nil), data...)
				continue
			}
			for i := range data {
				if data[i] != ref[i] {
					t.Fatalf("%s: threads=%d diverges at element %d: %v != %v",
						name, threads, i, data[i], ref[i])
				}
			}
		}
	}
}

// TestRepeatedRunsIdentical: the whole simulation is deterministic — two
// identical configurations produce identical cycle counts and counters.
func TestRepeatedRunsIdentical(t *testing.T) {
	run := func() Result {
		k := NewMG()
		res, err := Run(k, RunConfig{
			Model: machine.XeonHT(), Threads: 8, Policy: core.Policy2M, Class: ClassT,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles {
		t.Errorf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.Counters != b.Counters {
		t.Errorf("counters differ:\n%+v\n%+v", a.Counters, b.Counters)
	}
}
