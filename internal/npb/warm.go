package npb

import (
	"fmt"

	"hugeomp/internal/core"
	"hugeomp/internal/omp"
	"hugeomp/internal/units"
)

// Warm is a reusable warmed template for repeated runs of one kernel
// configuration: a snapshot of the fully constructed system (page tables,
// hugetlbfs pool, SCASH regions — everything NewSystem and Setup build) plus
// the kernel's post-Setup state. Each Run forks both — O(metadata) for the
// system via the copy-on-write page table, a few slice copies for the
// kernel's mutable arrays — skipping the address-space construction and
// matrix generation that dominate short runs, and produces a Result
// bit-identical to a cold Run of the same config (NewRT configures fresh
// hardware contexts either way).
//
// The address-space-shaping fields of the template config — Policy, Class,
// Hugetlb, HugePages — are fixed at capture time and must match on every
// Run. Everything applied at or after NewRT is free per fork: Model (the
// machine rebuilds its contexts from it), Sharing, Barrier, Threads,
// Iterations. Fault plans fire during construction, which forks skip by
// definition, so faulted configs must take the cold path (Run rejects them).
type Warm struct {
	base RunConfig
	snap *core.Snapshot
	kern Kernel // frozen post-Setup state; never run
}

// NewWarm builds the system and kernel once, cold, exactly as Run would, and
// freezes them. cfg's construction-shaping fields define the template;
// cfg.Fault must be nil.
func NewWarm(name string, cfg RunConfig) (*Warm, error) {
	if cfg.Fault != nil {
		return nil, fmt.Errorf("npb: warm template with a fault plan (faulted configs run cold)")
	}
	k, err := New(name)
	if err != nil {
		return nil, err
	}
	if _, ok := k.(forker); !ok {
		return nil, fmt.Errorf("npb: kernel %s does not support warm forking", k.Name())
	}
	shared := sharedBytesFor(cfg.Class)
	sys, err := core.NewSystem(core.Config{
		Model:       cfg.Model,
		Policy:      cfg.Policy,
		Sharing:     cfg.Sharing,
		Barrier:     cfg.Barrier,
		SharedBytes: shared,
		PhysBytes:   4 * shared,
		HugePages:   cfg.HugePages,
	})
	if err != nil {
		return nil, fmt.Errorf("npb: system: %w", err)
	}
	if err := k.Setup(sys, cfg.Class); err != nil {
		return nil, fmt.Errorf("npb: setup %s: %w", k.Name(), err)
	}
	sys.Seal()
	return &Warm{base: cfg, snap: sys.Snapshot(), kern: k}, nil
}

// Kernel returns the template's kernel name.
func (w *Warm) Kernel() string { return w.kern.Name() }

// Run forks the warmed template and executes one run under cfg. Safe for
// concurrent calls (sweep drivers fork under internal/par).
func (w *Warm) Run(cfg RunConfig) (Result, error) {
	res, _, _, _, err := w.runOn(cfg)
	return res, err
}

// RunOn is Run returning the forked system and runtime alongside the result,
// mirroring the package-level RunOn for harnesses that audit post-run state.
// Like the package-level RunOn, a fork whose Run or Verify failed — including
// a context abort — comes back alongside the error for post-mortem audit.
func (w *Warm) RunOn(cfg RunConfig) (Result, *core.System, *omp.RT, error) {
	res, _, sys, rt, err := w.runOn(cfg)
	return res, sys, rt, err
}

// RunChecksum is Run additionally returning the forked kernel's solution
// checksum (the fingerprint chaos baselines memoize).
func (w *Warm) RunChecksum(cfg RunConfig) (Result, float64, error) {
	res, fk, _, _, err := w.runOn(cfg)
	if err != nil {
		return Result{}, 0, err
	}
	return res, Checksum(fk), nil
}

func (w *Warm) runOn(cfg RunConfig) (Result, Kernel, *core.System, *omp.RT, error) {
	if cfg.Policy != w.base.Policy || cfg.Class != w.base.Class ||
		cfg.Hugetlb != w.base.Hugetlb || cfg.HugePages != w.base.HugePages {
		return Result{}, nil, nil, nil, fmt.Errorf(
			"npb: warm run config reshapes the address space (policy/class/hugetlb/pool must match the template)")
	}
	if cfg.Fault != nil {
		return Result{}, nil, nil, nil, fmt.Errorf("npb: warm run with a fault plan (faulted configs run cold)")
	}
	fk, _ := forkKernel(w.kern)
	sys := w.snap.Fork()
	// Everything the runtime derives at NewRT time is free per fork: the
	// machine rebuilds its contexts from Model/Sharing, the barrier comes
	// from Cfg.
	sys.Cfg.Model = cfg.Model
	sys.Cfg.Sharing = cfg.Sharing
	sys.Cfg.Barrier = cfg.Barrier
	sys.Machine.Model = cfg.Model
	sys.Machine.Sharing = cfg.Sharing
	rt, err := sys.NewRT(cfg.Threads)
	if err != nil {
		return Result{}, nil, nil, nil, err
	}
	if cfg.Ctx != nil {
		rt.Bind(cfg.Ctx)
	}
	iters := cfg.Iterations
	if iters == 0 {
		iters = fk.DefaultIterations(cfg.Class)
	}
	if err := fk.Run(rt, iters); err != nil {
		return Result{}, fk, sys, rt, fmt.Errorf("npb: run %s: %w", fk.Name(), err)
	}
	if err := fk.Verify(); err != nil {
		return Result{}, fk, sys, rt, fmt.Errorf("npb: verify %s: %w", fk.Name(), err)
	}
	return Result{
		Kernel:   fk.Name(),
		Class:    cfg.Class,
		Model:    cfg.Model.Name,
		Threads:  cfg.Threads,
		Policy:   cfg.Policy,
		Cycles:   rt.WallCycles(),
		Seconds:  rt.Seconds(),
		Counters: rt.TotalCounters(),
		Regions:  rt.RegionProfiles(),
		DataMB:   float64(sys.DataFootprint()) / float64(units.MB),
		InstrMB:  float64(sys.InstrFootprint()) / float64(units.MB),
		Degraded: sys.Degraded,
		OS:       sys.OSCounters(),
	}, fk, sys, rt, nil
}
