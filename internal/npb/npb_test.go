package npb

import (
	"testing"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
)

func runOne(t *testing.T, name string, cfg RunConfig) Result {
	t.Helper()
	k, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(k, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

func TestAllKernelsRunAndVerifyClassT(t *testing.T) {
	for _, name := range Names() {
		for _, policy := range []core.PagePolicy{core.Policy4K, core.Policy2M, core.PolicyMixed} {
			res := runOne(t, name, RunConfig{
				Model:   machine.Opteron270(),
				Threads: 2,
				Policy:  policy,
				Class:   ClassT,
			})
			if res.Cycles == 0 {
				t.Errorf("%s/%v: zero cycles", name, policy)
			}
			if res.Counters.Accesses() == 0 {
				t.Errorf("%s/%v: no simulated accesses", name, policy)
			}
		}
	}
}

func TestAllKernelsOnXeonWithSMT(t *testing.T) {
	for _, name := range Names() {
		res := runOne(t, name, RunConfig{
			Model:   machine.XeonHT(),
			Threads: 8,
			Policy:  core.Policy4K,
			Class:   ClassT,
		})
		if res.Counters.SMTSwitches == 0 {
			t.Errorf("%s: no SMT switches at 8 threads on the Xeon", name)
		}
	}
}

func TestResultsIndependentOfThreadsAndPages(t *testing.T) {
	// CG's residual path is identical regardless of thread count and page
	// size: the simulation changes timing, never values.
	ref := func(threads int, policy core.PagePolicy) float64 {
		k := NewCG()
		if _, err := Run(k, RunConfig{
			Model: machine.Opteron270(), Threads: threads, Policy: policy, Class: ClassT,
		}); err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, v := range k.z.Data {
			s += v
		}
		return s
	}
	base := ref(1, core.Policy4K)
	// Reduction combine order differs with the partition, so allow float
	// reassociation noise; page size must change nothing at all for a fixed
	// thread count.
	close := func(a, b float64) bool {
		if a == b {
			return true
		}
		d := a - b
		if d < 0 {
			d = -d
		}
		m := b
		if m < 0 {
			m = -m
		}
		return d <= 1e-9*m
	}
	for _, th := range []int{2, 4} {
		if got := ref(th, core.Policy4K); !close(got, base) {
			t.Errorf("threads=%d: residual %g != %g", th, got, base)
		}
	}
	if got, want := ref(4, core.Policy2M), ref(4, core.Policy4K); got != want {
		t.Errorf("2M pages changed the numerics: %g != %g", got, want)
	}
}

func TestLargePagesReduceWalksClassS(t *testing.T) {
	// The paper's core claim at kernel level: CG, SP, MG see large DTLB
	// walk reductions with 2MB pages.
	for _, name := range []string{"CG", "SP", "MG"} {
		r4 := runOne(t, name, RunConfig{
			Model: machine.Opteron270(), Threads: 4, Policy: core.Policy4K, Class: ClassS,
		})
		r2 := runOne(t, name, RunConfig{
			Model: machine.Opteron270(), Threads: 4, Policy: core.Policy2M, Class: ClassS,
		})
		if r2.Counters.DTLBWalks()*2 >= r4.Counters.DTLBWalks() {
			t.Errorf("%s: 2M walks %d not well below 4K walks %d",
				name, r2.Counters.DTLBWalks(), r4.Counters.DTLBWalks())
		}
		if r2.Cycles > r4.Cycles {
			t.Errorf("%s: 2M pages slower (%d > %d cycles)", name, r2.Cycles, r4.Cycles)
		}
	}
}

func TestFootprintsReported(t *testing.T) {
	res := runOne(t, "CG", RunConfig{
		Model: machine.Opteron270(), Threads: 1, Policy: core.Policy4K, Class: ClassT,
	})
	if res.DataMB <= 0 || res.InstrMB <= 0 {
		t.Errorf("footprints: data %.2f instr %.2f", res.DataMB, res.InstrMB)
	}
}

func TestParseClass(t *testing.T) {
	for s, want := range map[string]Class{"T": ClassT, "s": ClassS, "W": ClassW, "a": ClassA} {
		got, err := ParseClass(s)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseClass("B"); err == nil {
		t.Error("class B should be rejected (not simulatable at full scale)")
	}
}

func TestUnknownKernel(t *testing.T) {
	if _, err := New("LU"); err == nil {
		t.Error("LU is not in the paper's suite")
	}
}

func TestLCGDeterminism(t *testing.T) {
	a, b := newLCG(7), newLCG(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("lcg not deterministic")
		}
	}
	r := newLCG(9)
	vals := r.uniqueSorted(10, 100)
	if len(vals) != 10 {
		t.Fatal("uniqueSorted count")
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Fatal("uniqueSorted not strictly increasing")
		}
	}
	for i := 0; i < 1000; i++ {
		f := r.float()
		if f < 0 || f >= 1 {
			t.Fatalf("float out of range: %v", f)
		}
	}
}

func TestCoherentTrueSharingIntegration(t *testing.T) {
	// Exercise the MESI snoop bus and lock-serialised sharing under a full
	// kernel: Opteron with coherent private L2s, true-sharing mode.
	model := machine.Opteron270()
	model.Coherent = true
	k := NewMG()
	res, err := Run(k, RunConfig{
		Model:   model,
		Threads: 4,
		Policy:  core.Policy4K,
		Class:   ClassT,
		Sharing: machine.ShareTrue,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
	// A direct producer/consumer pair must show a cache-to-cache
	// intervention on the snoop bus.
	sys, err := core.NewSystem(core.Config{Model: model, Policy: core.Policy4K, Sharing: machine.ShareTrue})
	if err != nil {
		t.Fatal(err)
	}
	arr := sys.MustArray("shared", 1024)
	rt, err := sys.NewRT(2)
	if err != nil {
		t.Fatal(err)
	}
	ctxs := rt.Contexts()
	arr.Store(ctxs[0], 0, 1.0)
	arr.Load(ctxs[1], 0)
	if sys.Machine.Bus() == nil {
		t.Fatal("coherent model without a bus")
	}
	if sys.Machine.Bus().Interventions() == 0 {
		t.Error("no cache-to-cache interventions under true sharing")
	}
}
