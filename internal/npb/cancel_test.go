package npb

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"hugeomp/internal/check"
	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/omp"
)

// abortCtx is a context whose Err fires after a fixed number of polls —
// the instrument that lets the abort table hit every cancellation point of a
// run: poll k is the k-th time anything (worksharing chunk grab or kernel
// Checkpoint) looks at the context.
type abortCtx struct {
	context.Context
	after int64
	polls atomic.Int64
}

func newAbortCtx(after int64) *abortCtx {
	return &abortCtx{Context: context.Background(), after: after}
}

func (a *abortCtx) Err() error {
	if a.polls.Add(1) > a.after {
		return context.Canceled
	}
	return nil
}

// TestRunCancelled: the table-driven abort sweep. For each kernel: count the
// run's cancellation polls, then abort at points spread across the whole run
// (including the very first poll) and require, every time, that
//
//   - the error wraps both omp.ErrAborted and the context's error,
//   - the abandoned fork still passes the full check.All audit (every access
//     that happened is fully accounted — cancellation loses no counters), and
//   - after all those aborted forks, a sibling fork of the same warm template
//     still reproduces the cold run bit-for-bit (aborts never leak into the
//     shared snapshot).
func TestRunCancelled(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := RunConfig{
				Model: machine.Opteron270(), Threads: 2, Policy: core.Policy2M, Class: ClassT,
			}
			ck, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := Run(ck, cfg)
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			w, err := NewWarm(name, cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Poll census: a complete run under a never-firing instrumented
			// context tells us how many cancellation points the run has.
			census := newAbortCtx(math.MaxInt64)
			probe := cfg
			probe.Ctx = census
			if _, err := w.Run(probe); err != nil {
				t.Fatalf("census run: %v", err)
			}
			total := census.polls.Load()
			if total == 0 {
				t.Fatalf("%s run polled the context zero times — no cancellation points", name)
			}

			// Abort thresholds: the first poll, the last, and points spread
			// across the run (capped so the sweep stays cheap; every kind of
			// checkpoint is still crossed because the stride is coprime-ish
			// with nothing — it simply lands in every phase of the run).
			const maxAborts = 10
			stride := total / maxAborts
			if stride < 1 {
				stride = 1
			}
			var thresholds []int64
			for at := int64(1); at <= total; at += stride {
				thresholds = append(thresholds, at)
			}
			thresholds = append(thresholds, total) // the final checkpoint

			for _, at := range thresholds {
				acfg := cfg
				acfg.Ctx = newAbortCtx(at - 1) // fire ON poll `at`
				_, sys, _, err := w.RunOn(acfg)
				if err == nil {
					// Aborting on the very last polls can lose the race with
					// completion only if the run stopped polling — but our
					// thresholds are ≤ total, so poll `at` must fire.
					t.Fatalf("abort at poll %d/%d: run completed", at, total)
				}
				if !errors.Is(err, omp.ErrAborted) {
					t.Fatalf("abort at poll %d: err = %v, want omp.ErrAborted", at, err)
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("abort at poll %d: err = %v, want wrapped context.Canceled", at, err)
				}
				if sys == nil {
					t.Fatalf("abort at poll %d: no system returned for post-mortem", at)
				}
				if aerr := check.All(sys.Machine); aerr != nil {
					t.Fatalf("abort at poll %d/%d: aborted fork fails audit: %v", at, total, aerr)
				}
			}

			// Sibling isolation: after every aborted fork above, a fresh fork
			// of the same template must still equal the cold run exactly.
			sib, err := w.Run(cfg)
			if err != nil {
				t.Fatalf("sibling after aborts: %v", err)
			}
			if !reflect.DeepEqual(cold, sib) {
				t.Errorf("sibling fork after aborted runs differs from cold run:\ncold: %+v\nsib:  %+v", cold, sib)
			}
		})
	}
}

// TestRunCancelledColdPath: the cold (non-warm) path reports the same
// abort contract and returns the system for post-mortem audit.
func TestRunCancelledColdPath(t *testing.T) {
	cfg := RunConfig{
		Model: machine.Opteron270(), Threads: 2, Policy: core.Policy4K, Class: ClassT,
		Ctx: newAbortCtx(0), // fire on the first poll
	}
	k, err := New("cg")
	if err != nil {
		t.Fatal(err)
	}
	_, sys, rt, err := RunOn(k, cfg)
	if !errors.Is(err, omp.ErrAborted) {
		t.Fatalf("err = %v, want omp.ErrAborted", err)
	}
	if sys == nil || rt == nil {
		t.Fatal("aborted cold run must return sys and rt for post-mortem")
	}
	if aerr := check.All(sys.Machine); aerr != nil {
		t.Fatalf("aborted cold run fails audit: %v", aerr)
	}
}

// TestRunDeadlineContext: a real context.WithCancel cancelled before the run
// begins aborts immediately with the deadline error chain intact.
func TestRunDeadlineContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := RunConfig{
		Model: machine.Opteron270(), Threads: 2, Policy: core.Policy4K, Class: ClassT,
		Ctx: ctx,
	}
	k, err := New("mg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(k, cfg); !errors.Is(err, omp.ErrAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrAborted wrapping context.Canceled", err)
	}
}
