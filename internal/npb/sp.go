package npb

import (
	"fmt"
	"math"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/omp"
)

// SP: a scalar-pentadiagonal-style ADI solver reduced to its memory-system
// essence — alternating-direction implicit line solves (Thomas algorithm)
// through a 3D grid in x, y and z. The z solve walks lines whose element
// stride is one full plane: every access touches a different 4 KB page and
// the number of pages per line exceeds the 4 KB DTLB, so with small pages
// nearly every z-solve access takes a page walk — while the whole grid fits
// comfortably in the 2 MB-page TLB reach. This is the access pattern that
// gives SP its ~20% large-page gain in the paper.
//
// Geometry note: the paper runs class B (102^3); at our scaled sizes the
// decisive ratio is (pages per z line) vs (DTLB capacity), so the grid is
// deliberately elongated in z: plane > 4KB and nz > the 544-entry Opteron
// 4 KB DTLB stack, preserving the class-B behaviour at class-A cost.
type SP struct {
	class      Class
	nx, ny, nz int

	u   *core.Array // solution
	rhs *core.Array // right-hand side / workspace
	rho *core.Array // an auxiliary field streamed in rhs computation

	codeRHS   *omp.CodeRegion
	codeSolve *omp.CodeRegion

	checksum float64
	initial  float64
	ran      bool
}

// NewSP returns a fresh SP kernel.
func NewSP() *SP { return &SP{} }

// Name implements Kernel.
func (k *SP) Name() string { return "SP" }

// PaperFootprint implements Kernel (Table 2, class B).
func (k *SP) PaperFootprint() (int64, int64) { return mb(1.6), mb(387) }

func (k *SP) geometry(class Class) (nx, ny, nz int) {
	// Plane = nx*ny*8 bytes (>4KB from class S up); nz chosen so a z line
	// cycles more 4 KB pages than the DTLB holds at class W/A.
	// The plane (nx·ny·8 bytes) is deliberately NOT a power-of-two multiple
	// of 4 KB: a 12 KB plane advances the z-line's virtual page number by 3
	// per step, touching every set of the 4-way L2 DTLB (a 8 KB plane would
	// use only the even sets and halve the effective capacity).
	switch class {
	case ClassS:
		return 48, 32, 96
	case ClassW:
		return 48, 32, 280
	case ClassA:
		return 48, 32, 288
	default:
		return 16, 16, 32
	}
}

// DefaultIterations implements Kernel.
func (k *SP) DefaultIterations(class Class) int {
	switch class {
	case ClassS:
		return 3
	case ClassW:
		return 3
	case ClassA:
		return 4
	default:
		return 2
	}
}

func (k *SP) n() int { return k.nx * k.ny * k.nz }

// idx flattens (i,j,kk) with i fastest.
func (k *SP) idx(i, j, kk int) int { return i + k.nx*(j+k.ny*kk) }

// Setup implements Kernel.
func (k *SP) Setup(sys *core.System, class Class) error {
	k.class = class
	k.nx, k.ny, k.nz = k.geometry(class)
	n := k.n()
	var err error
	if k.u, err = sys.NewArray("sp.u", n); err != nil {
		return err
	}
	if k.rhs, err = sys.NewArray("sp.rhs", n); err != nil {
		return err
	}
	if k.rho, err = sys.NewArray("sp.rho", n); err != nil {
		return err
	}
	if k.codeRHS, err = sys.NewCodeRegion("sp.rhs", 20*1024); err != nil {
		return err
	}
	if k.codeSolve, err = sys.NewCodeRegion("sp.solve", 28*1024); err != nil {
		return err
	}

	rng := newLCG(271828)
	var sum float64
	for i := range k.u.Data {
		k.u.Data[i] = rng.float()
		k.rho.Data[i] = 0.1 + 0.8*rng.float()
		sum += k.u.Data[i]
	}
	k.initial = sum
	return nil
}

// computeRHS streams the grid once, unit stride (compact stencil in i).
func (k *SP) computeRHS(rt *omp.RT) {
	n := k.n()
	rt.ParallelFor(k.codeRHS, n, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			k.u.LoadRange(c, lo, hi)
			k.rho.LoadRange(c, lo, hi)
			for i := lo; i < hi; i++ {
				left, right := i, i
				if i > 0 {
					left = i - 1
				}
				if i < n-1 {
					right = i + 1
				}
				k.rhs.Data[i] = k.rho.Data[i] * (k.u.Data[left] + k.u.Data[right] - 2*k.u.Data[i] + k.u.Data[i])
			}
			k.rhs.StoreRange(c, lo, hi)
			// Flux and dissipation terms in three directions: ~30 flops
			// per point.
			c.Compute(uint64(30 * (hi - lo)))
		})
}

// solveLine runs the Thomas algorithm over one line of `count` points
// starting at element `start` with element stride `stride`: an implicit
// (1 + 2λ, -λ) tridiagonal system, updating u in place from rhs.
func (k *SP) solveLine(c *machine.Context, start, count, stride int, lam float64) {
	// Forward sweep reads rhs and u along the line; backward sweep writes u.
	k.rhs.LoadStride(c, start, count, stride)
	k.u.LoadStride(c, start, count, stride)

	b := 1 + 2*lam
	// Forward elimination. The c' coefficients are thread-private stack
	// scratch (the real SP keeps them in registers/private arrays), so they
	// are not driven through the simulated memory system.
	cp := make([]float64, count)
	cp[0] = -lam / b
	k.u.Data[start] = (k.u.Data[start] + lam*k.rhs.Data[start]) / b
	for m := 1; m < count; m++ {
		i := start + m*stride
		ip := i - stride
		den := b + lam*cp[m-1]
		cp[m] = -lam / den
		k.u.Data[i] = (k.u.Data[i] + lam*k.rhs.Data[i] + lam*k.u.Data[ip]) / den
	}
	// Back substitution.
	for m := count - 2; m >= 0; m-- {
		i := start + m*stride
		k.u.Data[i] -= cp[m] * k.u.Data[i+stride]
	}
	k.u.StoreStride(c, start, count, stride)
	// The real SP solves scalar pentadiagonal systems for five variables
	// with flux-limited coefficients: ~40 flops per point per direction.
	c.Compute(uint64(40 * count))
}

// xSolve: unit-stride lines (i direction).
func (k *SP) xSolve(rt *omp.RT, lam float64) {
	lines := k.ny * k.nz
	rt.ParallelFor(k.codeSolve, lines, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			for l := lo; l < hi; l++ {
				j, kk := l%k.ny, l/k.ny
				k.solveLine(c, k.idx(0, j, kk), k.nx, 1, lam)
			}
		})
}

// ySolve: stride-nx lines (j direction).
func (k *SP) ySolve(rt *omp.RT, lam float64) {
	lines := k.nx * k.nz
	rt.ParallelFor(k.codeSolve, lines, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			for l := lo; l < hi; l++ {
				i, kk := l%k.nx, l/k.nx
				k.solveLine(c, k.idx(i, 0, kk), k.ny, k.nx, lam)
			}
		})
}

// zSolve: stride-(nx·ny) lines (k direction) — one page per access.
func (k *SP) zSolve(rt *omp.RT, lam float64) {
	lines := k.nx * k.ny
	rt.ParallelFor(k.codeSolve, lines, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			for l := lo; l < hi; l++ {
				i, j := l%k.nx, l/k.nx
				k.solveLine(c, k.idx(i, j, 0), k.nz, k.nx*k.ny, lam)
			}
		})
}

// Run implements Kernel: ADI timesteps (rhs, x, y, z).
func (k *SP) Run(rt *omp.RT, iterations int) error {
	const lam = 0.45
	for it := 0; it < iterations; it++ {
		if err := rt.Checkpoint(); err != nil {
			return err
		}
		k.computeRHS(rt)
		k.xSolve(rt, lam)
		k.ySolve(rt, lam)
		k.zSolve(rt, lam)
	}
	if err := rt.Checkpoint(); err != nil {
		return err
	}
	// Checksum reduction.
	k.checksum = rt.ParallelForReduce(k.codeRHS, k.n(), omp.For{Schedule: omp.Static}, 0,
		func(tid int, c *machine.Context, lo, hi int) float64 {
			k.u.LoadRange(c, lo, hi)
			s := 0.0
			for i := lo; i < hi; i++ {
				s += k.u.Data[i]
			}
			return s
		}, func(a, b float64) float64 { return a + b })
	if err := rt.Checkpoint(); err != nil {
		return err
	}
	k.ran = true
	return nil
}

// Verify implements Kernel: the implicit diffusion steps are conservative-
// ish and must keep the field finite and bounded; the checksum must stay
// within a factor of the initial mass.
func (k *SP) Verify() error {
	if !k.ran {
		return fmt.Errorf("sp: not run")
	}
	if math.IsNaN(k.checksum) || math.IsInf(k.checksum, 0) {
		return fmt.Errorf("sp: checksum not finite")
	}
	for i, v := range k.u.Data {
		if math.IsNaN(v) || math.Abs(v) > 1e6 {
			return fmt.Errorf("sp: solution diverged at %d: %g", i, v)
		}
	}
	if k.initial != 0 && math.Abs(k.checksum) > 10*math.Abs(k.initial) {
		return fmt.Errorf("sp: checksum %g far from initial %g", k.checksum, k.initial)
	}
	return nil
}
