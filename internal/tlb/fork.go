package tlb

// Fork returns an independent deep copy of the TLB: resident entries,
// recency permutation vectors, presence filter, and hit/miss counters.
// Nil-safe, matching the nil-means-absent convention of New.
func (t *TLB) Fork() *TLB {
	if t == nil {
		return nil
	}
	nt := &TLB{
		vpns:     append([]uint64(nil), t.vpns...),
		meta:     append([]uint8(nil), t.meta...),
		order:    append([]uint64(nil), t.order...),
		ow:       t.ow,
		live:     append([]uint16(nil), t.live...),
		filtMask: t.filtMask,
		assoc:    t.assoc,
		setMask:  t.setMask,
		hits:     t.hits,
		misses:   t.misses,
	}
	if t.filt != nil {
		nt.filt = append([]uint16(nil), t.filt...)
	}
	return nt
}

// Fork returns an independent deep copy of the hierarchy, including the
// per-size union presence filters, so a forked context resumes with exactly
// the warmed translation state of the parent.
func (h *Hierarchy) Fork() *Hierarchy {
	nh := &Hierarchy{spec: h.spec}
	for i := range h.l1 {
		nh.l1[i] = h.l1[i].Fork()
		nh.l2[i] = h.l2[i].Fork()
	}
	for i, f := range h.filt {
		if f != nil {
			nh.filt[i] = append([]uint16(nil), f...)
		}
		nh.filtMask[i] = h.filtMask[i]
	}
	return nh
}
