package tlb

import (
	"fmt"
	"strings"

	"hugeomp/internal/units"
)

// LevelSpec sizes one TLB level, with separate entry classes per page size
// (processors of the paper's era kept distinct, smaller arrays for large
// pages).
type LevelSpec struct {
	E4K Config // 4 KB-entry class
	E2M Config // 2 MB-entry class
}

// Spec sizes a full two-level TLB stack (L1 + optional L2).
type Spec struct {
	Name string
	L1   LevelSpec
	L2   LevelSpec // zero Entries = no second level
}

// Halve returns a Spec with every structure at half capacity (minimum one
// entry per present structure). This models the paper's observation that
// with two SMT threads per core "the effective number of TLB entries could
// potentially be halved".
func (s Spec) Halve() Spec {
	h := func(c Config) Config {
		if c.Entries == 0 {
			return c
		}
		e := c.Entries / 2
		if e < 1 {
			e = 1
		}
		w := c.Ways
		if w > e {
			w = e
		}
		return Config{Entries: e, Ways: w}
	}
	return Spec{
		Name: s.Name + "/smt-half",
		L1:   LevelSpec{E4K: h(s.L1.E4K), E2M: h(s.L1.E2M)},
		L2:   LevelSpec{E4K: h(s.L2.E4K), E2M: h(s.L2.E2M)},
	}
}

// Coverage returns the bytes of address space the whole stack can map for
// the given page size (the paper's Table 1 "Coverage" rows).
func (s Spec) Coverage(size units.PageSize) int64 {
	var entries int
	if size == units.Size2M {
		entries = s.L1.E2M.Entries + s.L2.E2M.Entries
	} else {
		entries = s.L1.E4K.Entries + s.L2.E4K.Entries
	}
	return int64(entries) * size.Bytes()
}

// Outcome classifies a TLB access.
type Outcome uint8

const (
	HitL1 Outcome = iota
	HitL2
	Miss
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	default:
		return "miss"
	}
}

// Hierarchy is an instantiated two-level split-size TLB stack for one
// context (one ITLB or one DTLB).
//
// A per-size-class union presence filter counts the valid entries of both
// levels per hash slot, so a full-stack miss — the expensive outcome that
// otherwise probes up to two structures before walking — is answered with a
// single load. The count is exact (every fill, eviction, promotion and
// shootdown adjusts it), so a filtered miss is byte-identical to the probed
// cascade it skips.
type Hierarchy struct {
	spec Spec
	l1   [units.NumPageSizes]*TLB
	l2   [units.NumPageSizes]*TLB

	filt     [units.NumPageSizes][]uint16
	filtMask [units.NumPageSizes]uint64
}

// NewHierarchy instantiates spec.
func NewHierarchy(spec Spec) *Hierarchy {
	h := &Hierarchy{spec: spec}
	h.l1[units.Size4K] = New(spec.L1.E4K)
	h.l1[units.Size2M] = New(spec.L1.E2M)
	h.l2[units.Size4K] = New(spec.L2.E4K)
	h.l2[units.Size2M] = New(spec.L2.E2M)
	for _, size := range [...]units.PageSize{units.Size4K, units.Size2M} {
		total := h.l1[size].Entries() + h.l2[size].Entries()
		if total == 0 {
			continue
		}
		slots := 16
		for slots < 8*total {
			slots <<= 1
		}
		h.filt[size] = make([]uint16, slots)
		h.filtMask[size] = uint64(slots - 1)
	}
	return h
}

func (h *Hierarchy) unionAdd(size units.PageSize, vpn uint64) {
	if f := h.filt[size]; f != nil {
		f[vpn&h.filtMask[size]]++
	}
}

func (h *Hierarchy) unionDel(size units.PageSize, vpn uint64) {
	if f := h.filt[size]; f != nil {
		f[vpn&h.filtMask[size]]--
	}
}

// Spec returns the hierarchy's configuration.
func (h *Hierarchy) Spec() Spec { return h.spec }

// Access probes the stack for vpn of the given page-size class; write
// accesses require an entry with the W bit. A second-level hit promotes the
// entry into L1. On a full miss (or W-bit microfault) the caller must
// perform a page walk and then call Fill.
//
//simlint:hotpath
func (h *Hierarchy) Access(vpn uint64, size units.PageSize, write bool) Outcome {
	if f := h.filt[size]; f != nil && f[vpn&h.filtMask[size]] == 0 {
		// Resident in neither level: one load replaces the full cascade.
		// Misses never touch recency state, so only the per-structure miss
		// counters need recording.
		h.l1[size].countMiss()
		h.l2[size].countMiss()
		return Miss
	}
	if h.l1[size].Lookup(vpn, write) {
		return HitL1
	}
	if e, ok := h.l2[size].LookupEntry(vpn, write); ok {
		// Promote to L1 exclusively: the entry moves up and the L1 victim
		// falls back to L2, so the stack's effective capacity is L1+L2 —
		// how the Opteron's two-level DTLB behaves in aggregate. The vpn
		// itself moves between levels (count-neutral net of the two
		// adjustments); only collateral evictions leave the stack.
		h.l2[size].Invalidate(vpn)
		h.unionDel(size, vpn)
		ev, evOK, ip := h.l1[size].InsertEx(vpn, e.Writable)
		if !ip {
			h.unionAdd(size, vpn)
		}
		if evOK {
			h.demote(size, ev)
		}
		return HitL2
	}
	return Miss
}

// demote pushes an L1 evictee down into L2, keeping the union filter exact:
// the entry's own move is count-neutral unless L2 already held a copy, and
// whatever its insertion evicts from L2 leaves the stack.
func (h *Hierarchy) demote(size units.PageSize, ev Entry) {
	if h.l2[size] == nil {
		// No second level (e.g. the Opteron's 2 MB class): the evictee
		// leaves the stack entirely.
		h.unionDel(size, ev.VPN)
		return
	}
	ev2, ev2OK, ip2 := h.l2[size].InsertEx(ev.VPN, ev.Writable)
	if ip2 {
		h.unionDel(size, ev.VPN)
	}
	if ev2OK {
		h.unionDel(size, ev2.VPN)
	}
}

// L1HitAt validates a memoised L1 way handle for the given size class: if
// way idx still holds vpn with sufficient permission it performs exactly the
// mutation a Lookup hit would (recency refresh, hit accounting) and reports
// true. A false return has no effect and the caller must run the full
// Access/walk sequence. Handles come from L1MRUWay.
//
//simlint:hotpath
func (h *Hierarchy) L1HitAt(size units.PageSize, idx int, vpn uint64, write bool) bool {
	return h.l1[size].HitAt(idx, vpn, write)
}

// L1MRUWay returns a memoisable handle for vpn in the L1 structure of the
// given size class, or -1. Every translation just resolved through Access or
// Fill sits at its set's MRU position, so the handle is O(1) to produce.
func (h *Hierarchy) L1MRUWay(size units.PageSize, vpn uint64) int {
	return h.l1[size].MRUWay(vpn)
}

// Fill installs a translation after a page walk.
//
//simlint:hotpath
func (h *Hierarchy) Fill(vpn uint64, size units.PageSize, writable bool) {
	ev, evOK, ip := h.l1[size].InsertEx(vpn, writable)
	if !ip {
		h.unionAdd(size, vpn)
	}
	if evOK {
		h.demote(size, ev)
	}
}

// Invalidate performs a shootdown of vpn in every level of its size class.
func (h *Hierarchy) Invalidate(vpn uint64, size units.PageSize) {
	if h.l1[size].Invalidate(vpn) {
		h.unionDel(size, vpn)
	}
	if h.l2[size].Invalidate(vpn) {
		h.unionDel(size, vpn)
	}
}

// Flush empties every structure (a full TLB flush, e.g. on context switch in
// the paper-era processors without ASIDs; our SMT model keeps per-context
// stacks instead, so this is used mainly by tests and by region resets).
func (h *Hierarchy) Flush() {
	for i := range h.l1 {
		h.l1[i].Flush()
		h.l2[i].Flush()
	}
	for _, f := range h.filt {
		for i := range f {
			f[i] = 0
		}
	}
}

// VisitEntries calls f for every valid entry across both levels and both
// size classes, reporting the level (1 or 2) and page size alongside the
// entry. Used by the post-run TLB-vs-pagetable consistency audit.
func (h *Hierarchy) VisitEntries(f func(level int, size units.PageSize, e Entry)) {
	for _, size := range [...]units.PageSize{units.Size4K, units.Size2M} {
		sz := size
		h.l1[sz].Visit(func(e Entry) { f(1, sz, e) })
		h.l2[sz].Visit(func(e Entry) { f(2, sz, e) })
	}
}

// String summarises the stack.
func (h *Hierarchy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: L1[4K %d/%dw, 2M %d/%dw]",
		h.spec.Name, h.spec.L1.E4K.Entries, h.spec.L1.E4K.Ways,
		h.spec.L1.E2M.Entries, h.spec.L1.E2M.Ways)
	if h.spec.L2.E4K.Entries > 0 || h.spec.L2.E2M.Entries > 0 {
		fmt.Fprintf(&b, " L2[4K %d/%dw, 2M %d/%dw]",
			h.spec.L2.E4K.Entries, h.spec.L2.E4K.Ways,
			h.spec.L2.E2M.Entries, h.spec.L2.E2M.Ways)
	}
	return b.String()
}
