package tlb

import (
	"fmt"
	"strings"

	"hugeomp/internal/units"
)

// LevelSpec sizes one TLB level, with separate entry classes per page size
// (processors of the paper's era kept distinct, smaller arrays for large
// pages).
type LevelSpec struct {
	E4K Config // 4 KB-entry class
	E2M Config // 2 MB-entry class
}

// Spec sizes a full two-level TLB stack (L1 + optional L2).
type Spec struct {
	Name string
	L1   LevelSpec
	L2   LevelSpec // zero Entries = no second level
}

// Halve returns a Spec with every structure at half capacity (minimum one
// entry per present structure). This models the paper's observation that
// with two SMT threads per core "the effective number of TLB entries could
// potentially be halved".
func (s Spec) Halve() Spec {
	h := func(c Config) Config {
		if c.Entries == 0 {
			return c
		}
		e := c.Entries / 2
		if e < 1 {
			e = 1
		}
		w := c.Ways
		if w > e {
			w = e
		}
		return Config{Entries: e, Ways: w}
	}
	return Spec{
		Name: s.Name + "/smt-half",
		L1:   LevelSpec{E4K: h(s.L1.E4K), E2M: h(s.L1.E2M)},
		L2:   LevelSpec{E4K: h(s.L2.E4K), E2M: h(s.L2.E2M)},
	}
}

// Coverage returns the bytes of address space the whole stack can map for
// the given page size (the paper's Table 1 "Coverage" rows).
func (s Spec) Coverage(size units.PageSize) int64 {
	var entries int
	if size == units.Size2M {
		entries = s.L1.E2M.Entries + s.L2.E2M.Entries
	} else {
		entries = s.L1.E4K.Entries + s.L2.E4K.Entries
	}
	return int64(entries) * size.Bytes()
}

// Outcome classifies a TLB access.
type Outcome uint8

const (
	HitL1 Outcome = iota
	HitL2
	Miss
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	default:
		return "miss"
	}
}

// Hierarchy is an instantiated two-level split-size TLB stack for one
// context (one ITLB or one DTLB).
type Hierarchy struct {
	spec Spec
	l1   [units.NumPageSizes]*TLB
	l2   [units.NumPageSizes]*TLB
}

// NewHierarchy instantiates spec.
func NewHierarchy(spec Spec) *Hierarchy {
	h := &Hierarchy{spec: spec}
	h.l1[units.Size4K] = New(spec.L1.E4K)
	h.l1[units.Size2M] = New(spec.L1.E2M)
	h.l2[units.Size4K] = New(spec.L2.E4K)
	h.l2[units.Size2M] = New(spec.L2.E2M)
	return h
}

// Spec returns the hierarchy's configuration.
func (h *Hierarchy) Spec() Spec { return h.spec }

// Access probes the stack for vpn of the given page-size class; write
// accesses require an entry with the W bit. A second-level hit promotes the
// entry into L1. On a full miss (or W-bit microfault) the caller must
// perform a page walk and then call Fill.
func (h *Hierarchy) Access(vpn uint64, size units.PageSize, write bool) Outcome {
	if h.l1[size].Lookup(vpn, write) {
		return HitL1
	}
	if e, ok := h.l2[size].LookupEntry(vpn, write); ok {
		// Promote to L1 exclusively: the entry moves up and the L1 victim
		// falls back to L2, so the stack's effective capacity is L1+L2 —
		// how the Opteron's two-level DTLB behaves in aggregate.
		h.l2[size].Invalidate(vpn)
		if ev, evOK := h.l1[size].Insert(vpn, e.Writable); evOK {
			h.l2[size].Insert(ev.VPN, ev.Writable)
		}
		return HitL2
	}
	return Miss
}

// Fill installs a translation after a page walk.
func (h *Hierarchy) Fill(vpn uint64, size units.PageSize, writable bool) {
	if ev, ok := h.l1[size].Insert(vpn, writable); ok {
		h.l2[size].Insert(ev.VPN, ev.Writable)
	}
}

// Invalidate performs a shootdown of vpn in every level of its size class.
func (h *Hierarchy) Invalidate(vpn uint64, size units.PageSize) {
	h.l1[size].Invalidate(vpn)
	h.l2[size].Invalidate(vpn)
}

// Flush empties every structure (a full TLB flush, e.g. on context switch in
// the paper-era processors without ASIDs; our SMT model keeps per-context
// stacks instead, so this is used mainly by tests and by region resets).
func (h *Hierarchy) Flush() {
	for i := range h.l1 {
		h.l1[i].Flush()
		h.l2[i].Flush()
	}
}

// VisitEntries calls f for every valid entry across both levels and both
// size classes, reporting the level (1 or 2) and page size alongside the
// entry. Used by the post-run TLB-vs-pagetable consistency audit.
func (h *Hierarchy) VisitEntries(f func(level int, size units.PageSize, e Entry)) {
	for _, size := range [...]units.PageSize{units.Size4K, units.Size2M} {
		sz := size
		h.l1[sz].Visit(func(e Entry) { f(1, sz, e) })
		h.l2[sz].Visit(func(e Entry) { f(2, sz, e) })
	}
}

// String summarises the stack.
func (h *Hierarchy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: L1[4K %d/%dw, 2M %d/%dw]",
		h.spec.Name, h.spec.L1.E4K.Entries, h.spec.L1.E4K.Ways,
		h.spec.L1.E2M.Entries, h.spec.L1.E2M.Ways)
	if h.spec.L2.E4K.Entries > 0 || h.spec.L2.E2M.Entries > 0 {
		fmt.Fprintf(&b, " L2[4K %d/%dw, 2M %d/%dw]",
			h.spec.L2.E4K.Entries, h.spec.L2.E4K.Ways,
			h.spec.L2.E2M.Entries, h.spec.L2.E2M.Ways)
	}
	return b.String()
}
