package tlb

// refTLB is the pre-rework timestamp-LRU implementation, kept verbatim as a
// test oracle: the linked-list recency scheme must produce byte-identical
// hit/miss/eviction outcomes for every operation sequence.

type refWay struct {
	vpn      uint64
	stamp    uint64
	valid    bool
	writable bool
}

type refTLB struct {
	ways     []refWay
	assoc    int
	setMask  uint64
	tick     uint64
	mruIndex []int

	hits   uint64
	misses uint64
}

func newRefTLB(cfg Config) *refTLB {
	if cfg.Entries == 0 {
		return nil
	}
	assoc := cfg.Ways
	if assoc <= 0 || assoc > cfg.Entries {
		assoc = cfg.Entries
	}
	sets := cfg.Entries / assoc
	return &refTLB{
		ways:     make([]refWay, cfg.Entries),
		assoc:    assoc,
		setMask:  uint64(sets - 1),
		mruIndex: make([]int, sets),
	}
}

func (t *refTLB) lookupEntry(vpn uint64, needW bool) (Entry, bool) {
	if t == nil {
		return Entry{}, false
	}
	set := vpn & t.setMask
	base := int(set) * t.assoc
	if m := t.mruIndex[set]; t.ways[base+m].valid && t.ways[base+m].vpn == vpn &&
		(!needW || t.ways[base+m].writable) {
		t.tick++
		t.ways[base+m].stamp = t.tick
		t.hits++
		return Entry{VPN: vpn, Writable: t.ways[base+m].writable}, true
	}
	for i := 0; i < t.assoc; i++ {
		w := &t.ways[base+i]
		if w.valid && w.vpn == vpn && (!needW || w.writable) {
			t.tick++
			w.stamp = t.tick
			t.mruIndex[set] = i
			t.hits++
			return Entry{VPN: vpn, Writable: w.writable}, true
		}
	}
	t.misses++
	return Entry{}, false
}

func (t *refTLB) insert(vpn uint64, writable bool) (evicted Entry, wasEvicted bool) {
	if t == nil {
		return Entry{}, false
	}
	set := vpn & t.setMask
	base := int(set) * t.assoc
	inPlace, empty, lru := -1, -1, -1
	oldest := ^uint64(0)
	for i := 0; i < t.assoc; i++ {
		w := &t.ways[base+i]
		switch {
		case w.valid && w.vpn == vpn:
			inPlace = i
		case !w.valid:
			if empty < 0 {
				empty = i
			}
		case w.stamp < oldest:
			oldest, lru = w.stamp, i
		}
	}
	victim := inPlace
	if victim < 0 {
		victim = empty
	}
	if victim < 0 {
		victim = lru
	}
	w := &t.ways[base+victim]
	wasEvicted = inPlace < 0 && w.valid
	evicted = Entry{VPN: w.vpn, Writable: w.writable}
	t.tick++
	*w = refWay{vpn: vpn, stamp: t.tick, valid: true, writable: writable}
	t.mruIndex[set] = victim
	return evicted, wasEvicted
}

func (t *refTLB) invalidate(vpn uint64) bool {
	if t == nil {
		return false
	}
	set := vpn & t.setMask
	base := int(set) * t.assoc
	for i := 0; i < t.assoc; i++ {
		w := &t.ways[base+i]
		if w.valid && w.vpn == vpn {
			w.valid = false
			return true
		}
	}
	return false
}

func (t *refTLB) flush() {
	if t == nil {
		return
	}
	for i := range t.ways {
		t.ways[i] = refWay{}
	}
	for i := range t.mruIndex {
		t.mruIndex[i] = 0
	}
}

func (t *refTLB) live() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.ways {
		if t.ways[i].valid {
			n++
		}
	}
	return n
}
