// Package tlb implements the translation lookaside buffers of the simulated
// processors: set-associative (or fully associative) LRU-replacement caches
// of virtual-page-number → translation mappings, with separate entry classes
// for 4 KB and 2 MB pages and up to two levels, exactly the structure the
// paper reports for the Opteron and Xeon (its Table 1).
//
// A TLB is owned by a single simulated hardware context and is not
// goroutine-safe; the machine layer enforces single-owner access (its
// default resource-partitioned SMT model) or wraps accesses in a lock (the
// true-shared ablation).
//
// The implementation simulates an associative structure without paying
// associative host cost on the common paths:
//
//   - Replacement recency is a per-set permutation vector — one byte per
//     way, most-recently-used first — packed into a handful of uint64
//     words, rather than LRU timestamps. Every stamp refresh of the old
//     scheme is a byte rotation here, so "evict the minimum stamp" and
//     "evict the last byte" select the same way, but victim selection is a
//     single shift instead of an associativity-wide scan, and a recency
//     refresh is a short SWAR byte search plus one masked shift per word —
//     no pointer chasing — which matters because the fully associative
//     32-way L1 DTLBs of the paper's processors sit on the scalar access
//     hot path.
//
//   - A counting presence filter (a small power-of-two array of per-hash
//     resident counts) answers "definitely not resident" with one load. It
//     is exact — no false negatives — so a filtered miss is byte-identical
//     to a scanned miss, and a miss never perturbs recency state, so
//     skipping the scan is invisible. (The hierarchy layer keeps a second,
//     union filter across both levels that answers full-stack misses before
//     any structure is probed; the per-structure filter here is what spares
//     the fully associative scans when the probe cascade does run.)
package tlb

import (
	"fmt"
	"math/bits"
)

// Config sizes one TLB structure. Ways == 0 or Ways >= Entries means fully
// associative. Entries == 0 means the structure is absent (for example the
// Opteron's L2 DTLB holds no 2 MB entries).
type Config struct {
	Entries int
	Ways    int
}

const (
	metaValid    = 1 << 0
	metaWritable = 1 << 1 // write permission recorded at fill time (the W bit)
)

// TLB is a single LRU translation cache for one page-size class. Ways are
// stored structure-of-arrays (set-major) so the hit scan walks a dense
// []uint64 of VPNs.
type TLB struct {
	vpns []uint64
	meta []uint8 // metaValid | metaWritable

	// Per-set recency permutation: ow words of order per set, one byte per
	// way. Byte position 0 of the set's first word is the MRU way's
	// set-local index; the last in-range byte is the LRU victim. Every way,
	// valid or not, always appears exactly once in its set's vector.
	//
	// Unused high bytes of a set's last word (when assoc is not a multiple
	// of 8) stay zero. The SWAR byte search below may therefore flag such a
	// byte when looking for way 0 — but way 0's true byte always sits at a
	// position below assoc, hence at the same or an earlier word and a
	// lower bit offset, and the search takes the lowest flagged byte, so
	// the phantom match is never selected.
	order []uint64
	ow    int      // order words per set: (assoc+7)/8
	live  []uint16 // valid ways per set

	// Counting presence filter: filt[vpn&filtMask] counts resident VPNs
	// hashing to the slot. Zero means vpn is definitely absent. Nil for
	// narrow structures (assoc <= 8), whose set scan is already one load
	// wide — see New.
	filt     []uint16
	filtMask uint64

	assoc   int
	setMask uint64

	hits   uint64
	misses uint64
}

// New builds a TLB from cfg. It returns nil for an absent structure
// (cfg.Entries == 0); all methods on a nil *TLB behave as a structure that
// never hits.
func New(cfg Config) *TLB {
	if cfg.Entries == 0 {
		return nil
	}
	assoc := cfg.Ways
	if assoc <= 0 || assoc > cfg.Entries {
		assoc = cfg.Entries
	}
	sets := cfg.Entries / assoc
	if sets*assoc != cfg.Entries {
		panic(fmt.Sprintf("tlb: entries %d not divisible by ways %d", cfg.Entries, assoc))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("tlb: set count %d not a power of two", sets))
	}
	if cfg.Entries > 1<<16 {
		panic(fmt.Sprintf("tlb: %d entries exceed recency-link width", cfg.Entries))
	}
	if assoc > 256 {
		panic(fmt.Sprintf("tlb: associativity %d exceeds recency-byte width", assoc))
	}
	// The counting filter earns its keep only when it spares a wide scan:
	// for associativities of eight or fewer ways the whole set's VPNs fit
	// in one host cache line, so a probe costs the same load the filter
	// would, while maintaining the counts charges extra stores on every
	// fill and eviction. Narrow structures therefore run unfiltered; the
	// hierarchy's union filter still short-circuits full-stack misses.
	filtSlots := 0
	if assoc > 8 {
		filtSlots = 16
		for filtSlots < 8*cfg.Entries {
			filtSlots <<= 1
		}
	}
	ow := (assoc + 7) / 8
	t := &TLB{
		vpns:    make([]uint64, cfg.Entries),
		meta:    make([]uint8, cfg.Entries),
		order:   make([]uint64, sets*ow),
		ow:      ow,
		live:    make([]uint16, sets),
		assoc:   assoc,
		setMask: uint64(sets - 1),
	}
	if filtSlots > 0 {
		t.filt = make([]uint16, filtSlots)
		t.filtMask = uint64(filtSlots - 1)
	}
	t.resetOrder()
	return t
}

// resetOrder writes the identity permutation into every set's recency
// vector (all ways invalid, so the order is arbitrary but deterministic).
func (t *TLB) resetOrder() {
	sets := int(t.setMask) + 1
	for s := 0; s < sets; s++ {
		ob := s * t.ow
		for j := 0; j < t.ow; j++ {
			t.order[ob+j] = 0
		}
		for p := 0; p < t.assoc; p++ {
			t.order[ob+p>>3] |= uint64(p&0xff) << (8 * (p & 7))
		}
	}
}

// headWay returns the MRU way of the set whose order vector starts at ob.
func (t *TLB) headWay(ob int) int { return int(t.order[ob] & 0xff) }

// tailWay returns the LRU way — byte position assoc-1 of the vector.
func (t *TLB) tailWay(ob int) int {
	p := t.assoc - 1
	return int(t.order[ob+p>>3] >> (8 * (p & 7)) & 0xff)
}

// touchPos moves the way at known recency position p to the front: bytes
// [0,p) shift up one position and the way's byte is reinserted at position
// 0. Positions above p (including the zero padding bytes past assoc) are
// untouched.
func (t *TLB) touchPos(ob, p, w int) {
	wi, bi := p>>3, p&7
	carry := uint64(w & 0xff)
	for j := 0; j < wi; j++ {
		word := t.order[ob+j]
		t.order[ob+j] = word<<8 | carry
		carry = word >> 56
	}
	word := t.order[ob+wi]
	low := word & (uint64(1)<<(8*bi) - 1)
	var high uint64
	if bi < 7 {
		high = word &^ (uint64(1)<<(8*(bi+1)) - 1)
	}
	t.order[ob+wi] = high | low<<8 | carry
}

// touchWay moves set-local way li to the front (MRU position) of its set's
// recency vector — the permutation equivalent of refreshing an LRU stamp.
// The SWAR probe flags the lowest byte equal to li in each word; see the
// order field's comment for why zero padding bytes can never win.
func (t *TLB) touchWay(set uint64, li int) {
	ob := int(set) * t.ow
	if t.headWay(ob) == li {
		return
	}
	pat := uint64(li&0xff) * 0x0101010101010101
	for j := 0; j < t.ow; j++ {
		x := t.order[ob+j] ^ pat
		if m := (x - 0x0101010101010101) &^ x & 0x8080808080808080; m != 0 {
			t.touchPos(ob, j*8+bits.TrailingZeros64(m)/8, li)
			return
		}
	}
}

// Entries returns the capacity of the TLB (0 for an absent structure).
func (t *TLB) Entries() int {
	if t == nil {
		return 0
	}
	return len(t.vpns)
}

// countMiss records a miss that was resolved without probing this structure
// (the hierarchy's filter fast path); misses do not touch recency state, so
// the skipped scan is unobservable beyond this counter.
func (t *TLB) countMiss() {
	if t != nil {
		t.misses++
	}
}

// Lookup probes for vpn and refreshes its LRU recency on a hit. A write
// (needW) hitting an entry filled without write permission misses — the
// hardware takes a permission microfault and re-walks, which is how
// protection upgrades become visible (x86's dirty/W-bit behaviour).
func (t *TLB) Lookup(vpn uint64, needW bool) bool {
	_, ok := t.LookupEntry(vpn, needW)
	return ok
}

// LookupEntry is Lookup returning the resident entry (so callers moving
// entries between levels can preserve the recorded permission).
//
//simlint:hotpath
func (t *TLB) LookupEntry(vpn uint64, needW bool) (Entry, bool) {
	if t == nil {
		return Entry{}, false
	}
	if t.filt != nil && t.filt[vpn&t.filtMask] == 0 {
		t.misses++
		return Entry{}, false
	}
	set := vpn & t.setMask
	base := int(set) * t.assoc
	// MRU fast path: spatial locality makes consecutive accesses to the
	// same page the common case, and the MRU way is by definition already
	// at the front of the recency vector.
	if h := base + t.headWay(int(set)*t.ow); t.vpns[h] == vpn && t.meta[h]&metaValid != 0 {
		if needW && t.meta[h]&metaWritable == 0 {
			t.misses++
			return Entry{}, false
		}
		t.hits++
		return Entry{VPN: vpn, Writable: t.meta[h]&metaWritable != 0}, true
	}
	for i := base; i < base+t.assoc; i++ {
		if t.vpns[i] == vpn && t.meta[i]&metaValid != 0 {
			if needW && t.meta[i]&metaWritable == 0 {
				t.misses++
				return Entry{}, false
			}
			t.touchWay(set, i-base)
			t.hits++
			return Entry{VPN: vpn, Writable: t.meta[i]&metaWritable != 0}, true
		}
	}
	t.misses++
	return Entry{}, false
}

// HitAt verifies that global way index idx still holds vpn with sufficient
// permission and, if so, performs exactly the mutation a Lookup hit would
// (recency move-to-front plus hit accounting). It returns false otherwise —
// with no counter or recency effect — so the caller can fall back to the
// full probe sequence. This is the validation step of the machine layer's
// scalar translation memo: a stale memo entry is detected against the live
// way, never trusted.
//
//simlint:hotpath
func (t *TLB) HitAt(idx int, vpn uint64, needW bool) bool {
	if t == nil || idx < 0 || idx >= len(t.vpns) {
		return false
	}
	if t.vpns[idx] != vpn || t.meta[idx]&metaValid == 0 {
		return false
	}
	if needW && t.meta[idx]&metaWritable == 0 {
		return false
	}
	set := vpn & t.setMask
	t.touchWay(set, idx-int(set)*t.assoc)
	t.hits++
	return true
}

// MRUWay returns the global way index holding vpn if it sits at the MRU
// position of its set — where every just-resolved translation lands — or -1.
// The machine layer records this handle in its scalar translation memo.
func (t *TLB) MRUWay(vpn uint64) int {
	if t == nil {
		return -1
	}
	set := vpn & t.setMask
	idx := int(set)*t.assoc + t.headWay(int(set)*t.ow)
	if t.meta[idx]&metaValid != 0 && t.vpns[idx] == vpn {
		return idx
	}
	return -1
}

// Entry is a TLB entry as seen by eviction handling.
type Entry struct {
	VPN      uint64
	Writable bool
}

// Insert fills vpn with the given write permission, evicting the LRU way of
// its set if necessary. It returns the evicted entry and whether an eviction
// happened. Inserting a vpn that is already resident updates it in place
// (e.g. a permission upgrade after a W-bit microfault).
func (t *TLB) Insert(vpn uint64, writable bool) (evicted Entry, wasEvicted bool) {
	evicted, wasEvicted, _ = t.InsertEx(vpn, writable)
	return evicted, wasEvicted
}

// InsertEx is Insert additionally reporting whether the fill updated a
// resident entry in place — the membership information the hierarchy's
// union filter needs.
//
//simlint:hotpath
func (t *TLB) InsertEx(vpn uint64, writable bool) (evicted Entry, wasEvicted, inPlace bool) {
	if t == nil {
		return Entry{}, false, false
	}
	set := vpn & t.setMask
	base := int(set) * t.assoc
	ob := int(set) * t.ow
	victim := -1
	if t.filt == nil || t.filt[vpn&t.filtMask] != 0 {
		for i := base; i < base+t.assoc; i++ {
			if t.vpns[i] == vpn && t.meta[i]&metaValid != 0 {
				victim, inPlace = i, true
				break
			}
		}
	}
	tailVictim := false
	if victim < 0 {
		if int(t.live[set]) < t.assoc {
			// The set has room: fill the lowest-indexed invalid way, the
			// same way the stamp-scan victim search picked it.
			for i := base; i < base+t.assoc; i++ {
				if t.meta[i]&metaValid == 0 {
					victim = i
					break
				}
			}
		} else {
			// A full set always evicts the LRU tail, whose recency
			// position is known — the move-to-front below needs no search.
			victim = base + t.tailWay(ob)
			tailVictim = true
		}
	}
	wasEvicted = !inPlace && t.meta[victim]&metaValid != 0
	evicted = Entry{VPN: t.vpns[victim], Writable: t.meta[victim]&metaWritable != 0}
	if !inPlace {
		if !wasEvicted {
			t.live[set]++
		}
		if t.filt != nil {
			if wasEvicted {
				t.filt[t.vpns[victim]&t.filtMask]--
			}
			t.filt[vpn&t.filtMask]++
		}
	}
	t.vpns[victim] = vpn
	m := uint8(metaValid)
	if writable {
		m |= metaWritable
	}
	t.meta[victim] = m
	if tailVictim {
		t.touchPos(ob, t.assoc-1, victim-base)
	} else {
		t.touchWay(set, victim-base)
	}
	return evicted, wasEvicted, inPlace
}

// Invalidate removes vpn if present (a TLB shootdown), reporting whether an
// entry was dropped. The way stays in its set's recency vector; replacement
// prefers invalid ways by index before consulting the list tail, matching
// the stamp scheme's victim order.
func (t *TLB) Invalidate(vpn uint64) bool {
	if t == nil {
		return false
	}
	if t.filt != nil && t.filt[vpn&t.filtMask] == 0 {
		return false
	}
	set := vpn & t.setMask
	base := int(set) * t.assoc
	for i := base; i < base+t.assoc; i++ {
		if t.vpns[i] == vpn && t.meta[i]&metaValid != 0 {
			t.meta[i] = 0
			t.live[set]--
			if t.filt != nil {
				t.filt[vpn&t.filtMask]--
			}
			return true
		}
	}
	return false
}

// Flush invalidates every entry.
func (t *TLB) Flush() {
	if t == nil {
		return
	}
	for i := range t.vpns {
		t.vpns[i] = 0
		t.meta[i] = 0
	}
	for i := range t.live {
		t.live[i] = 0
	}
	for i := range t.filt {
		t.filt[i] = 0
	}
	t.resetOrder()
}

// Stats returns lifetime hit/miss counts.
func (t *TLB) Stats() (hits, misses uint64) {
	if t == nil {
		return 0, 0
	}
	return t.hits, t.misses
}

// Visit calls f for every valid entry (nil-safe). The post-run consistency
// audit in internal/check uses it to compare resident translations against
// the page table.
func (t *TLB) Visit(f func(Entry)) {
	if t == nil {
		return
	}
	for i := range t.vpns {
		if t.meta[i]&metaValid != 0 {
			f(Entry{VPN: t.vpns[i], Writable: t.meta[i]&metaWritable != 0})
		}
	}
}

// Live returns the number of valid entries (used by tests and invariants).
func (t *TLB) Live() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.live {
		n += int(t.live[i])
	}
	return n
}
