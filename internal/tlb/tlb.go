// Package tlb implements the translation lookaside buffers of the simulated
// processors: set-associative (or fully associative) LRU-replacement caches
// of virtual-page-number → translation mappings, with separate entry classes
// for 4 KB and 2 MB pages and up to two levels, exactly the structure the
// paper reports for the Opteron and Xeon (its Table 1).
//
// A TLB is owned by a single simulated hardware context and is not
// goroutine-safe; the machine layer enforces single-owner access (its
// default resource-partitioned SMT model) or wraps accesses in a lock (the
// true-shared ablation).
package tlb

import "fmt"

// Config sizes one TLB structure. Ways == 0 or Ways >= Entries means fully
// associative. Entries == 0 means the structure is absent (for example the
// Opteron's L2 DTLB holds no 2 MB entries).
type Config struct {
	Entries int
	Ways    int
}

type way struct {
	vpn      uint64
	stamp    uint64
	valid    bool
	writable bool // write permission recorded at fill time (the W bit)
}

// TLB is a single LRU translation cache for one page-size class.
type TLB struct {
	ways     []way // sets*assoc entries, set-major
	assoc    int
	setMask  uint64
	tick     uint64
	mruIndex []int // per-set most-recently-used way, checked first

	hits   uint64
	misses uint64
}

// New builds a TLB from cfg. It returns nil for an absent structure
// (cfg.Entries == 0); all methods on a nil *TLB behave as a structure that
// never hits.
func New(cfg Config) *TLB {
	if cfg.Entries == 0 {
		return nil
	}
	assoc := cfg.Ways
	if assoc <= 0 || assoc > cfg.Entries {
		assoc = cfg.Entries
	}
	sets := cfg.Entries / assoc
	if sets*assoc != cfg.Entries {
		panic(fmt.Sprintf("tlb: entries %d not divisible by ways %d", cfg.Entries, assoc))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("tlb: set count %d not a power of two", sets))
	}
	return &TLB{
		ways:     make([]way, cfg.Entries),
		assoc:    assoc,
		setMask:  uint64(sets - 1),
		mruIndex: make([]int, sets),
	}
}

// Entries returns the capacity of the TLB (0 for an absent structure).
func (t *TLB) Entries() int {
	if t == nil {
		return 0
	}
	return len(t.ways)
}

// Lookup probes for vpn and refreshes its LRU stamp on a hit. A write
// (needW) hitting an entry filled without write permission misses — the
// hardware takes a permission microfault and re-walks, which is how
// protection upgrades become visible (x86's dirty/W-bit behaviour).
func (t *TLB) Lookup(vpn uint64, needW bool) bool {
	_, ok := t.LookupEntry(vpn, needW)
	return ok
}

// LookupEntry is Lookup returning the resident entry (so callers moving
// entries between levels can preserve the recorded permission).
func (t *TLB) LookupEntry(vpn uint64, needW bool) (Entry, bool) {
	if t == nil {
		return Entry{}, false
	}
	set := vpn & t.setMask
	base := int(set) * t.assoc
	// MRU fast path: spatial locality makes consecutive accesses to the
	// same page the common case.
	if m := t.mruIndex[set]; t.ways[base+m].valid && t.ways[base+m].vpn == vpn &&
		(!needW || t.ways[base+m].writable) {
		t.tick++
		t.ways[base+m].stamp = t.tick
		t.hits++
		return Entry{VPN: vpn, Writable: t.ways[base+m].writable}, true
	}
	for i := 0; i < t.assoc; i++ {
		w := &t.ways[base+i]
		if w.valid && w.vpn == vpn && (!needW || w.writable) {
			t.tick++
			w.stamp = t.tick
			t.mruIndex[set] = i
			t.hits++
			return Entry{VPN: vpn, Writable: w.writable}, true
		}
	}
	t.misses++
	return Entry{}, false
}

// Entry is a TLB entry as seen by eviction handling.
type Entry struct {
	VPN      uint64
	Writable bool
}

// Insert fills vpn with the given write permission, evicting the LRU way of
// its set if necessary. It returns the evicted entry and whether an eviction
// happened. Inserting a vpn that is already resident updates it in place
// (e.g. a permission upgrade after a W-bit microfault).
func (t *TLB) Insert(vpn uint64, writable bool) (evicted Entry, wasEvicted bool) {
	if t == nil {
		return Entry{}, false
	}
	set := vpn & t.setMask
	base := int(set) * t.assoc
	inPlace, empty, lru := -1, -1, -1
	oldest := ^uint64(0)
	for i := 0; i < t.assoc; i++ {
		w := &t.ways[base+i]
		switch {
		case w.valid && w.vpn == vpn:
			inPlace = i
		case !w.valid:
			if empty < 0 {
				empty = i
			}
		case w.stamp < oldest:
			oldest, lru = w.stamp, i
		}
	}
	victim := inPlace
	if victim < 0 {
		victim = empty
	}
	if victim < 0 {
		victim = lru
	}
	w := &t.ways[base+victim]
	wasEvicted = inPlace < 0 && w.valid
	evicted = Entry{VPN: w.vpn, Writable: w.writable}
	t.tick++
	*w = way{vpn: vpn, stamp: t.tick, valid: true, writable: writable}
	t.mruIndex[set] = victim
	return evicted, wasEvicted
}

// Invalidate removes vpn if present (a TLB shootdown), reporting whether an
// entry was dropped.
func (t *TLB) Invalidate(vpn uint64) bool {
	if t == nil {
		return false
	}
	set := vpn & t.setMask
	base := int(set) * t.assoc
	for i := 0; i < t.assoc; i++ {
		w := &t.ways[base+i]
		if w.valid && w.vpn == vpn {
			w.valid = false
			return true
		}
	}
	return false
}

// Flush invalidates every entry.
func (t *TLB) Flush() {
	if t == nil {
		return
	}
	for i := range t.ways {
		t.ways[i] = way{}
	}
	for i := range t.mruIndex {
		t.mruIndex[i] = 0
	}
}

// Stats returns lifetime hit/miss counts.
func (t *TLB) Stats() (hits, misses uint64) {
	if t == nil {
		return 0, 0
	}
	return t.hits, t.misses
}

// Visit calls f for every valid entry (nil-safe). The post-run consistency
// audit in internal/check uses it to compare resident translations against
// the page table.
func (t *TLB) Visit(f func(Entry)) {
	if t == nil {
		return
	}
	for i := range t.ways {
		if t.ways[i].valid {
			f(Entry{VPN: t.ways[i].vpn, Writable: t.ways[i].writable})
		}
	}
}

// Live returns the number of valid entries (used by tests and invariants).
func (t *TLB) Live() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.ways {
		if t.ways[i].valid {
			n++
		}
	}
	return n
}
