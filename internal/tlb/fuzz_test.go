package tlb

import (
	"testing"

	"hugeomp/internal/units"
)

// FuzzHierarchy drives a two-level TLB stack with an encoded op stream and
// checks structural invariants after every step: capacity bounds, the
// insert-then-hit guarantee, and shootdown completeness.
func FuzzHierarchy(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 0, 0, 128, 128, 255})
	f.Add([]byte{42})
	f.Fuzz(func(t *testing.T, ops []byte) {
		h := NewHierarchy(Spec{
			L1: LevelSpec{
				E4K: Config{Entries: 8, Ways: 2},
				E2M: Config{Entries: 4},
			},
			L2: LevelSpec{E4K: Config{Entries: 16, Ways: 4}},
		})
		for _, op := range ops {
			vpn := uint64(op % 64)
			size := units.Size4K
			if op&0x40 != 0 {
				size = units.Size2M
			}
			write := op&0x80 != 0
			switch op % 5 {
			case 0, 1, 2:
				if h.Access(vpn, size, write) == Miss {
					h.Fill(vpn, size, write)
					if h.Access(vpn, size, write) == Miss {
						t.Fatalf("fill(%d,%v,w=%v) did not stick", vpn, size, write)
					}
				}
			case 3:
				h.Invalidate(vpn, size)
				// A read after shootdown must miss (no stale entry).
				if h.Access(vpn, size, false) != Miss {
					t.Fatalf("stale entry for %d/%v after shootdown", vpn, size)
				}
				h.Fill(vpn, size, false)
			case 4:
				h.Flush()
			}
		}
	})
}
