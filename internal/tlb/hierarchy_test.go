package tlb

import (
	"testing"

	"hugeomp/internal/units"
)

func opteronDTLB() Spec {
	return Spec{
		Name: "opteron-dtlb",
		L1: LevelSpec{
			E4K: Config{Entries: 32},
			E2M: Config{Entries: 8},
		},
		L2: LevelSpec{
			E4K: Config{Entries: 512, Ways: 4},
		},
	}
}

func TestHierarchyMissFillHit(t *testing.T) {
	h := NewHierarchy(opteronDTLB())
	if got := h.Access(5, units.Size4K, false); got != Miss {
		t.Fatalf("first access = %v, want Miss", got)
	}
	h.Fill(5, units.Size4K, true)
	if got := h.Access(5, units.Size4K, false); got != HitL1 {
		t.Fatalf("after fill = %v, want HitL1", got)
	}
}

func TestHierarchyL2Promotion(t *testing.T) {
	h := NewHierarchy(opteronDTLB())
	// Fill 33 pages: page 0 is evicted from the 32-entry L1 into L2.
	for vpn := uint64(0); vpn < 33; vpn++ {
		h.Fill(vpn, units.Size4K, true)
	}
	got := h.Access(0, units.Size4K, false)
	if got != HitL2 {
		t.Fatalf("evicted page = %v, want HitL2", got)
	}
	// Promotion: now it is an L1 hit.
	if got := h.Access(0, units.Size4K, false); got != HitL1 {
		t.Fatalf("after promotion = %v, want HitL1", got)
	}
}

func TestOpteronNo2ML2(t *testing.T) {
	// The Opteron L2 DTLB holds no 2MB entries: filling 9 large pages must
	// evict one entirely (L1 capacity 8, no L2 backstop).
	h := NewHierarchy(opteronDTLB())
	for vpn := uint64(0); vpn < 9; vpn++ {
		h.Fill(vpn, units.Size2M, true)
	}
	misses := 0
	for vpn := uint64(0); vpn < 9; vpn++ {
		if h.Access(vpn, units.Size2M, false) == Miss {
			misses++
		}
	}
	if misses == 0 {
		t.Error("expected at least one 2MB miss: Opteron has only 8 large-page entries and no L2 backstop")
	}
}

func TestSizeClassesIndependent(t *testing.T) {
	h := NewHierarchy(opteronDTLB())
	h.Fill(7, units.Size4K, true)
	if got := h.Access(7, units.Size2M, false); got != Miss {
		t.Errorf("2M probe of 4K-filled vpn = %v, want Miss (classes are separate arrays)", got)
	}
}

func TestHalve(t *testing.T) {
	s := opteronDTLB().Halve()
	if s.L1.E4K.Entries != 16 || s.L1.E2M.Entries != 4 {
		t.Errorf("halved L1 = %+v", s.L1)
	}
	if s.L2.E4K.Entries != 256 {
		t.Errorf("halved L2 4K = %d, want 256", s.L2.E4K.Entries)
	}
	if s.L2.E2M.Entries != 0 {
		t.Errorf("halving an absent structure must keep it absent, got %d", s.L2.E2M.Entries)
	}
	// Halving never drops a present structure to zero.
	tiny := Spec{L1: LevelSpec{E4K: Config{Entries: 1}}}
	if got := tiny.Halve().L1.E4K.Entries; got != 1 {
		t.Errorf("halve(1) = %d, want 1", got)
	}
}

func TestCoverage(t *testing.T) {
	s := opteronDTLB()
	if got := s.Coverage(units.Size4K); got != int64(32+512)*4096 {
		t.Errorf("4K coverage = %d", got)
	}
	if got := s.Coverage(units.Size2M); got != 8*2*1024*1024 {
		t.Errorf("2M coverage = %d, want 16MB (the paper's Table 1 Opteron row)", got)
	}
}

func TestInvalidateShootdown(t *testing.T) {
	h := NewHierarchy(opteronDTLB())
	h.Fill(11, units.Size4K, true)
	h.Invalidate(11, units.Size4K)
	if got := h.Access(11, units.Size4K, false); got != Miss {
		t.Errorf("after shootdown = %v, want Miss", got)
	}
}

func TestFlush(t *testing.T) {
	h := NewHierarchy(opteronDTLB())
	for vpn := uint64(0); vpn < 100; vpn++ {
		h.Fill(vpn, units.Size4K, true)
	}
	h.Flush()
	for vpn := uint64(0); vpn < 100; vpn++ {
		if h.Access(vpn, units.Size4K, false) != Miss {
			t.Fatalf("vpn %d survived flush", vpn)
		}
	}
}

// The effective capacity invariant: a working set of exactly L1+L2 entries
// accessed round-robin never misses after warmup (exclusive-ish two-level
// stack behaves as one big TLB).
func TestAggregateCapacity(t *testing.T) {
	h := NewHierarchy(Spec{
		L1: LevelSpec{E4K: Config{Entries: 4}},
		L2: LevelSpec{E4K: Config{Entries: 12}},
	})
	const ws = 16 // == 4 + 12
	for round := 0; round < 3; round++ {
		for vpn := uint64(0); vpn < ws; vpn++ {
			if h.Access(vpn, units.Size4K, false) == Miss {
				if round > 0 {
					t.Fatalf("round %d: vpn %d missed; working set == aggregate capacity should be resident", round, vpn)
				}
				h.Fill(vpn, units.Size4K, true)
			}
		}
	}
}
