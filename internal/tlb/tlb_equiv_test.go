package tlb

import (
	"math/rand"
	"testing"
)

// driveEquiv runs one encoded op stream against both implementations and
// fails on the first observable divergence: lookup outcomes, returned
// entries, eviction results, stats, live counts, and the HitAt/MRUWay memo
// protocol (validated against the reference's plain lookup).
func driveEquiv(t *testing.T, cfg Config, ops []byte) {
	t.Helper()
	n := New(cfg)
	r := newRefTLB(cfg)
	memoWay := -1
	memoVPN := uint64(0)
	for k := 0; k+1 < len(ops); k += 2 {
		op, arg := ops[k], ops[k+1]
		vpn := uint64(arg % 37) // enough collisions to exercise every set
		w := op&0x80 != 0
		switch op % 5 {
		case 0: // lookup
			ne, nok := n.LookupEntry(vpn, w)
			re, rok := r.lookupEntry(vpn, w)
			if nok != rok || ne != re {
				t.Fatalf("op %d: lookup(%d,w=%v) = %v,%v want %v,%v", k, vpn, w, ne, nok, re, rok)
			}
		case 1: // insert, then memoise the handle
			nev, nwas := n.Insert(vpn, w)
			rev, rwas := r.insert(vpn, w)
			if nwas != rwas || (nwas && nev != rev) {
				t.Fatalf("op %d: insert(%d,w=%v) evicted %v,%v want %v,%v", k, vpn, w, nev, nwas, rev, rwas)
			}
			memoWay, memoVPN = n.MRUWay(vpn), vpn
			if memoWay < 0 {
				t.Fatalf("op %d: MRUWay(%d) = -1 right after insert", k, vpn)
			}
		case 2: // invalidate
			if ni, ri := n.Invalidate(vpn), r.invalidate(vpn); ni != ri {
				t.Fatalf("op %d: invalidate(%d) = %v want %v", k, vpn, ni, ri)
			}
		case 3: // flush
			n.Flush()
			r.flush()
		case 4: // memo validation: HitAt must agree with a reference lookup
			if memoWay < 0 {
				continue
			}
			// The reference must be probed only when HitAt succeeds (a failed
			// HitAt has no counter effect and the caller re-probes both).
			if n.HitAt(memoWay, memoVPN, w) {
				if _, ok := r.lookupEntry(memoVPN, w); !ok {
					t.Fatalf("op %d: HitAt(%d,%d) hit but reference misses", k, memoWay, memoVPN)
				}
			} else {
				ne, nok := n.LookupEntry(memoVPN, w)
				re, rok := r.lookupEntry(memoVPN, w)
				if nok != rok || ne != re {
					t.Fatalf("op %d: post-HitAt lookup diverged: %v,%v want %v,%v", k, ne, nok, re, rok)
				}
			}
		}
		nh, nm := n.Stats()
		if nh != r.hits || nm != r.misses {
			t.Fatalf("op %d: stats %d/%d want %d/%d", k, nh, nm, r.hits, r.misses)
		}
		if n.Live() != r.live() {
			t.Fatalf("op %d: live %d want %d", k, n.Live(), r.live())
		}
	}
}

// TestLinkedLRUMatchesStampReference pins the linked-list recency scheme to
// the old timestamp implementation across random op streams and every
// geometry class the simulated processors use (fully associative, 2-way,
// 4-way, single-entry).
func TestLinkedLRUMatchesStampReference(t *testing.T) {
	cfgs := []Config{
		{Entries: 32},          // Opteron L1 DTLB: fully associative
		{Entries: 8},           // Opteron 2M class
		{Entries: 64, Ways: 4}, // Xeon-style set associative
		{Entries: 8, Ways: 2},
		{Entries: 1},
	}
	rng := rand.New(rand.NewSource(42))
	for _, cfg := range cfgs {
		for trial := 0; trial < 50; trial++ {
			ops := make([]byte, 400)
			rng.Read(ops)
			driveEquiv(t, cfg, ops)
		}
	}
}

// FuzzLinkedLRUEquivalence is the fuzz-driven version of the same oracle.
func FuzzLinkedLRUEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 128, 5, 4, 5, 2, 5, 0, 5})
	f.Fuzz(func(t *testing.T, ops []byte) {
		driveEquiv(t, Config{Entries: 8, Ways: 2}, ops)
		driveEquiv(t, Config{Entries: 16}, ops)
	})
}
