package tlb

import (
	"testing"
	"testing/quick"
)

func TestNilTLBNeverHits(t *testing.T) {
	var nilTLB *TLB = New(Config{Entries: 0})
	if nilTLB != nil {
		t.Fatal("Entries:0 should yield nil TLB")
	}
	if nilTLB.Lookup(5, false) {
		t.Error("nil TLB hit")
	}
	nilTLB.Insert(5, true) // must not panic
	nilTLB.Flush()
	if nilTLB.Entries() != 0 || nilTLB.Live() != 0 {
		t.Error("nil TLB reports capacity")
	}
}

func TestHitAfterInsert(t *testing.T) {
	tl := New(Config{Entries: 8})
	if tl.Lookup(100, false) {
		t.Error("hit on empty TLB")
	}
	tl.Insert(100, true)
	if !tl.Lookup(100, false) {
		t.Error("miss after insert")
	}
}

func TestLRUEvictionFullyAssociative(t *testing.T) {
	tl := New(Config{Entries: 4})
	for vpn := uint64(0); vpn < 4; vpn++ {
		tl.Insert(vpn, true)
	}
	// Touch 0 so 1 becomes LRU.
	if !tl.Lookup(0, false) {
		t.Fatal("0 should be resident")
	}
	ev, was := tl.Insert(99, true)
	if !was || ev.VPN != 1 {
		t.Errorf("evicted %+v (evict=%v), want vpn 1", ev, was)
	}
	if tl.Lookup(1, false) {
		t.Error("1 should be evicted")
	}
	for _, vpn := range []uint64{0, 2, 3, 99} {
		if !tl.Lookup(vpn, false) {
			t.Errorf("%d should be resident", vpn)
		}
	}
}

func TestSetAssociativeConflicts(t *testing.T) {
	// 8 entries, 2 ways -> 4 sets. VPNs congruent mod 4 conflict.
	tl := New(Config{Entries: 8, Ways: 2})
	tl.Insert(0, true)
	tl.Insert(4, true)
	tl.Insert(8, true) // evicts 0 (LRU in set 0)
	if tl.Lookup(0, false) {
		t.Error("0 should be evicted by set conflict")
	}
	if !tl.Lookup(4, false) || !tl.Lookup(8, false) {
		t.Error("4 and 8 should be resident")
	}
	// A different set is unaffected.
	tl.Insert(1, true)
	if !tl.Lookup(1, false) {
		t.Error("1 should be resident")
	}
}

func TestInvalidate(t *testing.T) {
	tl := New(Config{Entries: 4})
	tl.Insert(7, true)
	if !tl.Invalidate(7) {
		t.Error("invalidate should find 7")
	}
	if tl.Lookup(7, false) {
		t.Error("7 should be gone")
	}
	if tl.Invalidate(7) {
		t.Error("second invalidate should miss")
	}
}

func TestLiveNeverExceedsCapacity(t *testing.T) {
	f := func(vpns []uint16) bool {
		tl := New(Config{Entries: 16, Ways: 4})
		for _, v := range vpns {
			tl.Insert(uint64(v), true)
			if tl.Live() > 16 {
				return false
			}
		}
		// Every resident entry must be findable.
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: inserting then immediately looking up always hits, regardless of
// history (the entry can't be evicted before any intervening insert).
func TestInsertThenLookupHits(t *testing.T) {
	f := func(vpns []uint16) bool {
		tl := New(Config{Entries: 8, Ways: 2})
		for _, v := range vpns {
			tl.Insert(uint64(v), true)
			if !tl.Lookup(uint64(v), false) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a working set no larger than associativity in one set is never
// evicted under LRU (stack property for fully-associative TLBs).
func TestLRUStackProperty(t *testing.T) {
	f := func(accesses []uint8) bool {
		tl := New(Config{Entries: 8}) // fully associative
		hot := []uint64{1000, 1001, 1002, 1003}
		for _, h := range hot {
			tl.Insert(h, true)
		}
		miss := 0
		for _, a := range accesses {
			// Alternate between hot pages and cold pages; hot working set
			// of 4 + 1 in-flight cold page <= 8 entries, so hot never
			// misses.
			cold := uint64(2000 + int(a))
			tl.Insert(cold, true)
			for _, h := range hot {
				if !tl.Lookup(h, false) {
					miss++
				}
			}
		}
		return miss == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStatsCount(t *testing.T) {
	tl := New(Config{Entries: 2})
	tl.Lookup(1, false) // miss
	tl.Insert(1, true)
	tl.Lookup(1, false) // hit
	tl.Lookup(1, false) // hit (MRU path)
	h, m := tl.Stats()
	if h != 2 || m != 1 {
		t.Errorf("stats = %d hits %d misses, want 2/1", h, m)
	}
}

func TestBadConfigsPanic(t *testing.T) {
	for _, cfg := range []Config{
		{Entries: 10, Ways: 4}, // not divisible
		{Entries: 24, Ways: 8}, // 3 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestWriteBitMicrofault(t *testing.T) {
	tl := New(Config{Entries: 4})
	tl.Insert(5, false) // filled by a read of a read-only page
	if !tl.Lookup(5, false) {
		t.Error("read of read-filled entry should hit")
	}
	if tl.Lookup(5, true) {
		t.Error("write to non-writable entry must microfault (miss)")
	}
	// The re-walk upgrades the entry in place: no eviction, then writes hit.
	if _, evicted := tl.Insert(5, true); evicted {
		t.Error("permission upgrade must not evict")
	}
	if !tl.Lookup(5, true) {
		t.Error("write after upgrade should hit")
	}
	if tl.Live() != 1 {
		t.Errorf("live = %d, want 1 (in-place update)", tl.Live())
	}
}
