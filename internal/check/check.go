// Package check implements simulator-wide invariant auditing: conservation
// laws over the profile counters, the MESI single-owner discipline across the
// coherence bus, TLB-versus-page-table consistency, and the generation
// protocol of the per-context translation cache.
//
// The audits are meant to run on a quiescent system — after a kernel, a
// barrier, or a whole benchmark completes — and they are what turns the fault
// campaigns in cmd/chaos from "it didn't crash" into "every structural
// invariant held under every injected fault". Each audit returns nil when the
// invariant holds and a descriptive error (all violations joined) when it
// does not.
package check

import (
	"errors"
	"fmt"
	"sort"

	"hugeomp/internal/cache"
	"hugeomp/internal/machine"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/profile"
	"hugeomp/internal/tlb"
	"hugeomp/internal/units"
)

// Counters verifies the conservation laws that hold for any counter set
// produced by the machine layer (per-context or any sum of contexts):
//
//   - every data access is exactly one L1 outcome: L1Hits+L1Misses == Loads+Stores
//   - every L1 miss is exactly one L2 outcome: L2Hits+L2Misses == L1Misses
//   - every first-level DTLB miss is resolved once: DTLBL1Misses == DTLBL2Hit+DTLBWalks
//   - the DTLB cannot miss more often than it is probed: DTLBL1Misses <= Loads+Stores
//   - every ITLB miss walks: ITLBL1Miss == ITLBWalks
//   - attributed cycles are a part of, never more than, the busy clock:
//     WalkCyc+MemCyc+BarrierCyc+FlushCycles <= Busy
func Counters(c profile.Counters) error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("check: counters: "+format, args...))
	}
	if c.L1Hits+c.L1Misses != c.Accesses() {
		fail("L1 outcomes %d+%d != %d data accesses", c.L1Hits, c.L1Misses, c.Accesses())
	}
	if c.L2Hits+c.L2Misses != c.L1Misses {
		fail("L2 outcomes %d+%d != %d L1 misses", c.L2Hits, c.L2Misses, c.L1Misses)
	}
	if c.DTLBL1Misses() != c.DTLBL2Hit+c.DTLBWalks() {
		fail("DTLB L1 misses %d != L2 hits %d + walks %d",
			c.DTLBL1Misses(), c.DTLBL2Hit, c.DTLBWalks())
	}
	if c.DTLBL1Misses() > c.Accesses() {
		fail("DTLB L1 misses %d > %d data accesses", c.DTLBL1Misses(), c.Accesses())
	}
	if c.ITLBL1Miss != c.ITLBWalks {
		fail("ITLB misses %d != %d instruction walks", c.ITLBL1Miss, c.ITLBWalks)
	}
	if attributed := c.WalkCyc + c.MemCyc + c.BarrierCyc + c.FlushCycles; attributed > c.Busy {
		fail("attributed cycles %d (walk %d + mem %d + barrier %d + flush %d) > busy %d",
			attributed, c.WalkCyc, c.MemCyc, c.BarrierCyc, c.FlushCycles, c.Busy)
	}
	return errors.Join(errs...)
}

// MESI audits the coherence state across every cache attached to the bus: a
// line may have at most one Modified-or-Exclusive owner, and an exclusive
// owner excludes Shared copies elsewhere. A nil bus (coherence disabled) is
// trivially consistent. Violations are reported in line-address order so the
// output is deterministic.
func MESI(b *cache.Bus) error {
	if b == nil {
		return nil
	}
	type owners struct{ m, e, s int }
	lines := make(map[uint64]*owners)
	for _, c := range b.Caches() {
		for line, st := range c.Snapshot() {
			o := lines[line]
			if o == nil {
				o = &owners{}
				lines[line] = o
			}
			switch st {
			case cache.Modified:
				o.m++
			case cache.Exclusive:
				o.e++
			case cache.Shared:
				o.s++
			}
		}
	}
	bad := make([]uint64, 0)
	for line, o := range lines {
		if o.m+o.e > 1 || (o.m+o.e == 1 && o.s > 0) {
			bad = append(bad, line)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	var errs []error
	for _, line := range bad {
		o := lines[line]
		errs = append(errs, fmt.Errorf(
			"check: MESI: line %#x held by %d Modified, %d Exclusive, %d Shared owners",
			line, o.m, o.e, o.s))
	}
	return errors.Join(errs...)
}

// TLBs audits one context's resident TLB entries against the live page table:
// every valid entry must correspond to a current mapping of the same page-size
// class that permits reads, and an entry carrying the W bit must map a page
// that still permits writes. Queued shootdowns are delivered first (the
// mailbox contract makes undelivered invalidations legal until the next
// access, so the audit observes the post-delivery state). Call only while the
// context is quiescent.
func TLBs(ctx *machine.Context) error {
	ctx.SettleForAudit()
	pt := ctx.PageTable()
	var errs []error
	audit := func(name string, h *tlb.Hierarchy) {
		h.VisitEntries(func(level int, size units.PageSize, e tlb.Entry) {
			va := units.Addr(e.VPN) << size.Shift()
			wr, err := pt.Translate(va)
			if err != nil {
				errs = append(errs, fmt.Errorf(
					"check: ctx %d %s L%d: resident %s entry for va %#x has no live mapping: %w",
					ctx.ID, name, level, size, va, err))
				return
			}
			if wr.Entry.Size != size {
				errs = append(errs, fmt.Errorf(
					"check: ctx %d %s L%d: entry for va %#x cached as %s but the table maps it %s (missed shootdown on a size change)",
					ctx.ID, name, level, va, size, wr.Entry.Size))
				return
			}
			if wr.Entry.Prot&pagetable.ProtRead == 0 {
				errs = append(errs, fmt.Errorf(
					"check: ctx %d %s L%d: entry for va %#x maps a page with no read permission",
					ctx.ID, name, level, va))
			}
			if e.Writable && wr.Entry.Prot&pagetable.ProtWrite == 0 {
				errs = append(errs, fmt.Errorf(
					"check: ctx %d %s L%d: entry for va %#x carries the W bit but the table revoked write permission",
					ctx.ID, name, level, va))
			}
		})
	}
	audit("dtlb", ctx.DTLB())
	audit("itlb", ctx.ITLB())
	return errors.Join(errs...)
}

// TranslationCache audits the context's generation-stamped page-walk cache:
// every slot stamped with the current table generation must hold exactly what
// a fresh walk would return.
func TranslationCache(ctx *machine.Context) error {
	return ctx.AuditTranslationCache()
}

// BusConservation checks counter conservation across the sharded merge: the
// bus transaction counters live in padded per-cache blocks and the context
// counters in per-context (and, during omp regions, per-thread shard)
// blocks, yet after both merges every L2 miss of every context must account
// for exactly one bus miss transaction and vice versa:
//
//	Σ contexts' L2Misses == bus ReadMisses + WriteMisses
//
// Local L2 hits — including the lock-free private-line fast path — generate
// no transaction, and every transaction that misses locally is counted as an
// L2 miss by exactly one context, so any drift means a counter was lost or
// double-merged. A nil bus (coherence disabled) is trivially consistent.
func BusConservation(m *machine.Machine) error {
	b := m.Bus()
	if b == nil {
		return nil
	}
	var l2Misses uint64
	for _, ctx := range m.Contexts() {
		l2Misses += ctx.Ctr.L2Misses
	}
	if busMisses := b.ReadMisses() + b.WriteMisses(); busMisses != l2Misses {
		return fmt.Errorf(
			"check: bus conservation: merged bus miss transactions %d (read %d + write %d) != merged context L2 misses %d",
			busMisses, b.ReadMisses(), b.WriteMisses(), l2Misses)
	}
	return nil
}

// All runs every audit over a quiescent machine: the counter conservation
// laws over the sum of all contexts (and over each context individually,
// since the laws hold per context too), the TLB and translation-cache
// consistency of every context, and the MESI discipline on the bus if the
// machine is coherent.
func All(m *machine.Machine) error {
	var errs []error
	var agg profile.Counters
	for _, ctx := range m.Contexts() {
		agg.Add(&ctx.Ctr)
		if err := Counters(ctx.Ctr); err != nil {
			errs = append(errs, fmt.Errorf("ctx %d: %w", ctx.ID, err))
		}
		if err := TLBs(ctx); err != nil {
			errs = append(errs, err)
		}
		if err := TranslationCache(ctx); err != nil {
			errs = append(errs, err)
		}
	}
	if err := Counters(agg); err != nil {
		errs = append(errs, fmt.Errorf("aggregate: %w", err))
	}
	if err := MESI(m.Bus()); err != nil {
		errs = append(errs, err)
	}
	if err := BusConservation(m); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
