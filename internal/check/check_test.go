package check

import (
	"strings"
	"testing"

	"hugeomp/internal/cache"
	"hugeomp/internal/machine"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/profile"
	"hugeomp/internal/units"
)

// newMachine builds a one-socket machine with pages pages of the given class
// mapped read-write from VA 0, returning the machine and its contexts.
func newMachine(t testing.TB, model machine.Model, threads, pages int, ps units.PageSize) (*machine.Machine, []*machine.Context) {
	t.Helper()
	pt := pagetable.New()
	for i := 0; i < pages; i++ {
		va := units.Addr(int64(i) * ps.Bytes())
		pfn := uint64(int64(i) * ps.Bytes() / units.PageSize4K)
		if err := pt.Map(va, ps, pfn, pagetable.ProtRW); err != nil {
			t.Fatal(err)
		}
	}
	m := machine.New(model)
	m.AttachProcess(pt)
	ctxs, err := m.Configure(threads)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ctxs {
		c.SetPageHint(ps)
	}
	return m, ctxs
}

func TestAllHoldsOnRealRun(t *testing.T) {
	m, ctxs := newMachine(t, machine.Opteron270(), 2, 64, units.Size4K)
	for i, c := range ctxs {
		c.AccessRange(units.Addr(int64(i)*128*units.KB), 8192, 8, i%2 == 1)
		c.FetchRange(0, 256, 64)
		c.Load(units.Addr(i * 4096))
		c.Store(units.Addr(i*4096 + 64))
	}
	if err := All(m); err != nil {
		t.Fatalf("invariants violated on a clean run: %v", err)
	}
}

func TestAllHoldsOnCoherentRun(t *testing.T) {
	model := machine.Opteron270()
	model.Coherent = true
	m, ctxs := newMachine(t, model, 4, 64, units.Size4K)
	// All contexts read and write overlapping lines so the bus sees misses,
	// interventions and invalidations.
	for pass := 0; pass < 3; pass++ {
		for i, c := range ctxs {
			c.AccessRange(0, 4096, 8, (i+pass)%2 == 0)
		}
	}
	if m.Bus() == nil {
		t.Fatal("coherent model built no bus")
	}
	if err := All(m); err != nil {
		t.Fatalf("invariants violated on a coherent run: %v", err)
	}
}

// TestBusConservationAudit verifies the cross-merge conservation law is not
// vacuously green: a clean coherent run passes, and losing or double-merging
// one counter on either side of the context/bus boundary is flagged.
func TestBusConservationAudit(t *testing.T) {
	model := machine.Opteron270()
	model.Coherent = true
	m, ctxs := newMachine(t, model, 4, 64, units.Size4K)
	for i, c := range ctxs {
		c.AccessRange(0, 4096, 8, i%2 == 0)
	}
	if err := BusConservation(m); err != nil {
		t.Fatalf("clean coherent run flagged: %v", err)
	}
	// Drop an L2 miss, as a lost shard during the deterministic merge would.
	ctxs[2].Ctr.L2Misses--
	if err := BusConservation(m); err == nil {
		t.Fatal("lost context L2 miss not flagged")
	}
	// Double-merge it back and one more: now the contexts over-count.
	ctxs[2].Ctr.L2Misses += 2
	if err := BusConservation(m); err == nil {
		t.Fatal("double-merged context L2 miss not flagged")
	}
	ctxs[2].Ctr.L2Misses--
	if err := All(m); err != nil {
		t.Fatalf("restored machine still flagged: %v", err)
	}
}

func TestBusConservationNilBus(t *testing.T) {
	m, _ := newMachine(t, machine.Opteron270(), 1, 4, units.Size4K)
	if err := BusConservation(m); err != nil {
		t.Fatalf("nil bus flagged: %v", err)
	}
}

// TestCountersFlagsMutations perturbs each field that participates in a
// conservation law and verifies the audit is not vacuously green.
func TestCountersFlagsMutations(t *testing.T) {
	_, ctxs := newMachine(t, machine.Opteron270(), 1, 64, units.Size4K)
	ctxs[0].AccessRange(0, 8192, 8, false)
	ctxs[0].FetchRange(0, 256, 64)
	base := ctxs[0].Ctr
	if err := Counters(base); err != nil {
		t.Fatalf("baseline counters invalid: %v", err)
	}
	mutations := map[string]func(*profile.Counters){
		"L1Hits":     func(c *profile.Counters) { c.L1Hits++ },
		"L1Misses":   func(c *profile.Counters) { c.L1Misses++ },
		"L2Hits":     func(c *profile.Counters) { c.L2Hits++ },
		"L2Misses":   func(c *profile.Counters) { c.L2Misses++ },
		"Loads":      func(c *profile.Counters) { c.Loads++ },
		"DTLBL2Hit":  func(c *profile.Counters) { c.DTLBL2Hit++ },
		"DTLBWalks":  func(c *profile.Counters) { c.DTLBWalks4K++ },
		"ITLBWalks":  func(c *profile.Counters) { c.ITLBWalks++ },
		"ITLBL1Miss": func(c *profile.Counters) { c.ITLBL1Miss++ },
		"BusyUnder":  func(c *profile.Counters) { c.Busy = c.WalkCyc + c.MemCyc - 1 },
	}
	for name, mutate := range mutations {
		c := base
		mutate(&c)
		if err := Counters(c); err == nil {
			t.Errorf("mutation %s not flagged", name)
		}
	}
}

func TestMESIAudit(t *testing.T) {
	cfg := cache.Config{SizeBytes: 32 * units.KB, Ways: 4}
	bus := cache.NewBus()
	c0, c1 := cache.New(cfg), cache.New(cfg)
	bus.Attach(c0)
	bus.Attach(c1)
	for line := uint64(0); line < 64; line++ {
		bus.Access(c0, line, line%4 == 0)
		bus.Access(c1, line, false)
	}
	if err := MESI(bus); err != nil {
		t.Fatalf("clean bus traffic flagged: %v", err)
	}
	// Corrupt: promote both copies of a shared line to Modified — two owners.
	if !c0.ForceState(7, cache.Modified) || !c1.ForceState(7, cache.Modified) {
		t.Fatal("line 7 not resident in both caches")
	}
	err := MESI(bus)
	if err == nil {
		t.Fatal("two Modified owners not flagged")
	}
	if !strings.Contains(err.Error(), "0x7") {
		t.Errorf("violation message %q does not name line 0x7", err)
	}
	// Repair one side to Shared: still illegal (M owner with a Shared peer).
	c1.ForceState(7, cache.Shared)
	if MESI(bus) == nil {
		t.Error("Modified owner alongside Shared copy not flagged")
	}
	c0.ForceState(7, cache.Shared)
	if err := MESI(bus); err != nil {
		t.Errorf("all-Shared line still flagged: %v", err)
	}
}

func TestMESINilBus(t *testing.T) {
	if err := MESI(nil); err != nil {
		t.Fatalf("nil bus flagged: %v", err)
	}
}

func TestTLBAuditCatchesMissedUnmapShootdown(t *testing.T) {
	m, ctxs := newMachine(t, machine.Opteron270(), 1, 16, units.Size4K)
	c := ctxs[0]
	c.AccessRange(0, 16*512, 8, false) // fill the DTLB with all 16 pages
	if err := TLBs(c); err != nil {
		t.Fatalf("clean TLB state flagged: %v", err)
	}
	// Unmap page 3 without a shootdown: the resident entry is now stale.
	if _, err := m.PageTable().Unmap(3*4096, units.Size4K); err != nil {
		t.Fatal(err)
	}
	if err := TLBs(c); err == nil {
		t.Fatal("stale TLB entry for an unmapped page not flagged")
	}
	// Deliver the shootdown; the audit settles the mailbox and passes again.
	c.InvalidatePage(3*4096, units.Size4K)
	if err := TLBs(c); err != nil {
		t.Fatalf("TLB state after shootdown delivery flagged: %v", err)
	}
}

func TestTLBAuditCatchesRevokedWriteBit(t *testing.T) {
	m, ctxs := newMachine(t, machine.Opteron270(), 1, 16, units.Size4K)
	c := ctxs[0]
	c.Store(5 * 4096) // fill a W-bit entry for page 5
	if err := TLBs(c); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}
	if _, err := m.PageTable().Protect(5*4096, pagetable.ProtRead); err != nil {
		t.Fatal(err)
	}
	err := TLBs(c)
	if err == nil {
		t.Fatal("stale W bit after write-permission revocation not flagged")
	}
	if !strings.Contains(err.Error(), "W bit") {
		t.Errorf("violation message %q does not mention the W bit", err)
	}
	c.InvalidatePage(5*4096, units.Size4K)
	if err := TLBs(c); err != nil {
		t.Fatalf("state after shootdown flagged: %v", err)
	}
}

func TestTranslationCacheAuditCatchesCorruption(t *testing.T) {
	_, ctxs := newMachine(t, machine.Opteron270(), 1, 16, units.Size4K)
	c := ctxs[0]
	c.AccessRange(0, 16*512, 8, false)
	if err := TranslationCache(c); err != nil {
		t.Fatalf("clean translation cache flagged: %v", err)
	}
	// Plant a current-generation entry whose PFN disagrees with the table.
	c.ForceTranslationCacheEntry(9, pagetable.WalkResult{
		MemRefs: 4,
		Entry:   pagetable.Entry{PFN: 0xdead, Size: units.Size4K, Prot: pagetable.ProtRW},
	})
	if err := TranslationCache(c); err == nil {
		t.Fatal("corrupted translation-cache entry not flagged")
	}
}

// FuzzCounters drives the counter audit with arbitrary conserved sets: a
// consistent set (constructed so every law holds) must pass, and a +delta
// perturbation of any single equality-law field must fail.
func FuzzCounters(f *testing.F) {
	f.Add(uint64(1000), uint64(200), uint64(50), uint64(30), uint64(10), uint64(5), uint64(9999), uint8(0), uint8(1))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint8(3), uint8(7))
	f.Add(uint64(1<<40), uint64(1<<39), uint64(1<<20), uint64(1<<19), uint64(1<<10), uint64(1<<9), uint64(1<<50), uint8(5), uint8(255))
	f.Fuzz(func(t *testing.T, loads, stores, l1miss, l2hits, dtlbL2, walks4k, itlb uint64, field, deltaRaw uint8) {
		// Cap magnitudes so the derived cycle fields cannot overflow (the
		// audit's inequality assumes non-wrapping sums, which real counters
		// satisfy by construction).
		loads &= 0xffffffff
		stores &= 0xffffffff
		l1miss &= 0xffffffff
		l2hits &= 0xffffffff
		dtlbL2 &= 0xffffffff
		walks4k &= 0xffffffff
		itlb &= 0xffffffff
		// Build a set that satisfies every law by construction.
		acc := loads + stores
		l1miss %= acc + 1
		l2hits %= l1miss + 1
		dtlbMiss := (dtlbL2 + walks4k) % (acc + 1)
		dtlbL2 %= dtlbMiss + 1
		walks4k = dtlbMiss - dtlbL2
		c := profile.Counters{
			Loads:        loads,
			Stores:       stores,
			L1Hits:       acc - l1miss,
			L1Misses:     l1miss,
			L2Hits:       l2hits,
			L2Misses:     l1miss - l2hits,
			DTLBL1Miss4K: dtlbMiss,
			DTLBL2Hit:    dtlbL2,
			DTLBWalks4K:  walks4k,
			ITLBL1Miss:   itlb,
			ITLBWalks:    itlb,
			WalkCyc:      walks4k * 4,
			MemCyc:       (l1miss - l2hits) * 100,
			BarrierCyc:   dtlbL2,
			Busy:         walks4k*4 + (l1miss-l2hits)*100 + dtlbL2 + acc,
		}
		if err := Counters(c); err != nil {
			t.Fatalf("constructed-consistent set flagged: %v\n%+v", err, c)
		}
		delta := uint64(deltaRaw)%1000 + 1
		mutants := []func(*profile.Counters){
			func(c *profile.Counters) { c.L1Hits += delta },
			func(c *profile.Counters) { c.L2Hits += delta },
			func(c *profile.Counters) { c.DTLBL2Hit += delta },
			func(c *profile.Counters) { c.ITLBWalks += delta },
			func(c *profile.Counters) { c.DTLBWalks2M += delta },
		}
		mut := c
		mutants[int(field)%len(mutants)](&mut)
		if err := Counters(mut); err == nil {
			t.Fatalf("mutation %d (+%d) not flagged on %+v", int(field)%len(mutants), delta, c)
		}
	})
}
