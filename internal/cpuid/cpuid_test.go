package cpuid

import (
	"strings"
	"testing"

	"hugeomp/internal/machine"
	"hugeomp/internal/units"
)

func TestEnumerateOpteron(t *testing.T) {
	ds := Enumerate(machine.Opteron270())
	if len(ds) != 6 {
		t.Fatalf("descriptor count = %d", len(ds))
	}
	byKey := map[string]Descriptor{}
	for _, d := range ds {
		byKey[d.Structure+"/"+d.PageSize.String()] = d
	}
	if got := byKey["L1DTLB/2MB"].Entries; got != 8 {
		t.Errorf("Opteron L1DTLB 2MB entries = %d, want 8", got)
	}
	if got := byKey["L2DTLB/2MB"].Entries; got != 0 {
		t.Errorf("Opteron L2DTLB must hold no 2MB entries, got %d", got)
	}
	if got := byKey["L2DTLB/4KB"].Entries; got != 512 {
		t.Errorf("Opteron L2DTLB 4KB entries = %d, want 512", got)
	}
}

func TestCoverage(t *testing.T) {
	d := Descriptor{Structure: "L1DTLB", PageSize: units.Size2M, Entries: 8}
	if d.Coverage() != 16*units.MB {
		t.Errorf("coverage = %s", units.HumanBytes(d.Coverage()))
	}
}

func TestTable1Content(t *testing.T) {
	out := Table1([]machine.Model{machine.XeonHT(), machine.Opteron270()})
	// The two load-bearing facts of the paper's Table 1.
	for _, want := range []string{"64MB", "16MB", "XeonHT", "Opteron270", "ITLB (4KB) Size"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
	// Absent structures print as "-".
	if !strings.Contains(out, "-") {
		t.Error("absent L2DTLB 2MB rows should print as -")
	}
}
