// Package cpuid reproduces the mechanism the paper used to build its Table 1
// ("These sizes were measured through the CPUID instruction"): it exposes
// the TLB descriptors of the simulated processors in a CPUID-like form and
// formats the table of sizes and coverages.
package cpuid

import (
	"fmt"
	"strings"

	"hugeomp/internal/machine"
	"hugeomp/internal/units"
)

// Descriptor is one TLB structure as CPUID reports it.
type Descriptor struct {
	Structure string // e.g. "L1DTLB"
	PageSize  units.PageSize
	Entries   int
	Ways      int // 0 = fully associative
}

// Coverage returns the bytes of address space the structure can map.
func (d Descriptor) Coverage() int64 { return int64(d.Entries) * d.PageSize.Bytes() }

// Enumerate returns the TLB descriptors of a processor model in a stable
// order.
func Enumerate(m machine.Model) []Descriptor {
	return []Descriptor{
		{"ITLB", units.Size4K, m.ITLB.L1.E4K.Entries, m.ITLB.L1.E4K.Ways},
		{"ITLB", units.Size2M, m.ITLB.L1.E2M.Entries, m.ITLB.L1.E2M.Ways},
		{"L1DTLB", units.Size4K, m.DTLB.L1.E4K.Entries, m.DTLB.L1.E4K.Ways},
		{"L1DTLB", units.Size2M, m.DTLB.L1.E2M.Entries, m.DTLB.L1.E2M.Ways},
		{"L2DTLB", units.Size4K, m.DTLB.L2.E4K.Entries, m.DTLB.L2.E4K.Ways},
		{"L2DTLB", units.Size2M, m.DTLB.L2.E2M.Entries, m.DTLB.L2.E2M.Ways},
	}
}

// Table1 renders the paper's Table 1 ("Processor TLB Sizes and Coverage")
// for the given models.
func Table1(models []machine.Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Processor TLB Sizes and Coverage\n")
	fmt.Fprintf(&b, "%-24s", "")
	for _, m := range models {
		fmt.Fprintf(&b, "%12s", m.Name)
	}
	b.WriteByte('\n')

	row := func(label string, get func(m machine.Model) string) {
		fmt.Fprintf(&b, "%-24s", label)
		for _, m := range models {
			fmt.Fprintf(&b, "%12s", get(m))
		}
		b.WriteByte('\n')
	}
	entry := func(n int) string {
		if n == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", n)
	}
	row("ITLB (4KB) Size", func(m machine.Model) string { return entry(m.ITLB.L1.E4K.Entries) })
	row("ITLB (2MB) Size", func(m machine.Model) string { return entry(m.ITLB.L1.E2M.Entries) })
	row("L1DTLB (4KB) Size", func(m machine.Model) string { return entry(m.DTLB.L1.E4K.Entries) })
	row("L1DTLB (2MB) Size", func(m machine.Model) string { return entry(m.DTLB.L1.E2M.Entries) })
	row("L2DTLB (4KB) Size", func(m machine.Model) string { return entry(m.DTLB.L2.E4K.Entries) })
	row("L2DTLB (2MB) Size", func(m machine.Model) string { return entry(m.DTLB.L2.E2M.Entries) })
	row("DTLB (4KB) Coverage", func(m machine.Model) string {
		return units.HumanBytes(m.DTLB.Coverage(units.Size4K))
	})
	row("DTLB (2MB) Coverage", func(m machine.Model) string {
		return units.HumanBytes(m.DTLB.Coverage(units.Size2M))
	})
	return b.String()
}
