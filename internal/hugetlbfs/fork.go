package hugetlbfs

import "hugeomp/internal/mem"

// Fork returns an independent copy of the mount over phys, the forked
// physical memory that owns the same frame numbers the parent's pool and
// files refer to. File contents (frame lists) and the free pool are cloned;
// the mapped guard is carried over so a forked file cannot be double-mapped
// any more than the original could. The fault plan is NOT inherited: plans
// carry occurrence counters, so each run arms its own plan (SetFaultPlan)
// to keep forked runs bit-identical to cold ones.
func (fs *FS) Fork(phys *mem.PhysMem) *FS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nfs := &FS{
		phys:  phys,
		mode:  fs.mode,
		quota: fs.quota,
		used:  fs.used,
		files: make(map[string]*File, len(fs.files)),
	}
	if fs.pool != nil {
		nfs.pool = append([]uint64(nil), fs.pool...)
	}
	for name, f := range fs.files {
		nf := &File{fs: nfs, name: f.name, mapped: f.mapped}
		if f.frames != nil {
			nf.frames = append([]uint64(nil), f.frames...)
		}
		nfs.files[name] = nf
	}
	return nfs
}
