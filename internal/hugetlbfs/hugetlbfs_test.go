package hugetlbfs

import (
	"errors"
	"testing"

	"hugeomp/internal/mem"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

func TestPreallocateReservesImmediately(t *testing.T) {
	phys := mem.New(32 * units.MB)
	fs, err := Mount(phys, 8, Preallocate)
	if err != nil {
		t.Fatal(err)
	}
	if got := phys.Used2M(); got != 8 {
		t.Errorf("physical 2M frames after mount = %d, want 8 (preallocation)", got)
	}
	if fs.FreePages() != 8 || fs.UsedPages() != 0 {
		t.Errorf("free/used = %d/%d", fs.FreePages(), fs.UsedPages())
	}
}

func TestOnDemandReservesLazily(t *testing.T) {
	phys := mem.New(32 * units.MB)
	fs, err := Mount(phys, 8, OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if got := phys.Used2M(); got != 0 {
		t.Errorf("physical 2M frames after on-demand mount = %d, want 0", got)
	}
	if _, err := fs.Create("a", 2*units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	if got := phys.Used2M(); got != 2 {
		t.Errorf("frames after create = %d, want 2", got)
	}
}

func TestMountFailsWhenPhysTooSmall(t *testing.T) {
	phys := mem.New(8 * units.MB)
	if _, err := Mount(phys, 100, Preallocate); err == nil {
		t.Fatal("mount should fail")
	}
	// Rollback: nothing stays reserved.
	if got := phys.Used2M(); got != 0 {
		t.Errorf("frames leaked by failed mount: %d", got)
	}
}

func TestCreateQuotaENOSPC(t *testing.T) {
	phys := mem.New(64 * units.MB)
	fs, _ := Mount(phys, 4, Preallocate)
	if _, err := fs.Create("big", 3*units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	_, err := fs.Create("overflow", 2*units.PageSize2M)
	if !errors.Is(err, ErrNoSpace) {
		t.Errorf("want ErrNoSpace, got %v", err)
	}
	// Failed create must not consume pages.
	if fs.UsedPages() != 3 {
		t.Errorf("used = %d, want 3", fs.UsedPages())
	}
}

func TestCreateBadLength(t *testing.T) {
	phys := mem.New(16 * units.MB)
	fs, _ := Mount(phys, 4, Preallocate)
	for _, n := range []int64{0, -1, units.PageSize4K, units.PageSize2M + 1} {
		if _, err := fs.Create("x", n); !errors.Is(err, ErrBadLength) {
			t.Errorf("Create(%d): want ErrBadLength, got %v", n, err)
		}
	}
}

func TestDuplicateName(t *testing.T) {
	phys := mem.New(16 * units.MB)
	fs, _ := Mount(phys, 4, Preallocate)
	if _, err := fs.Create("f", units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("f", units.PageSize2M); !errors.Is(err, ErrExists) {
		t.Errorf("want ErrExists, got %v", err)
	}
}

func TestRemoveRecycles(t *testing.T) {
	phys := mem.New(16 * units.MB)
	fs, _ := Mount(phys, 4, Preallocate)
	if _, err := fs.Create("f", 4*units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if fs.FreePages() != 4 {
		t.Errorf("free after remove = %d, want 4", fs.FreePages())
	}
	if _, err := fs.Create("g", 4*units.PageSize2M); err != nil {
		t.Errorf("recycled pages unusable: %v", err)
	}
	if err := fs.Remove("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("want ErrNotExist, got %v", err)
	}
}

func TestMapInstalls2MTranslations(t *testing.T) {
	phys := mem.New(16 * units.MB)
	fs, _ := Mount(phys, 4, Preallocate)
	f, err := fs.Create("data", 2*units.PageSize2M)
	if err != nil {
		t.Fatal(err)
	}
	pt := pagetable.New()
	base := units.Addr(64 * units.MB)
	if err := f.Map(pt, base, pagetable.ProtRW); err != nil {
		t.Fatal(err)
	}
	wr, err := pt.Translate(base + 12345)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Entry.Size != units.Size2M {
		t.Errorf("mapping size = %v, want 2MB", wr.Entry.Size)
	}
	if wr.MemRefs != 1 {
		t.Errorf("walk refs = %d, want 1", wr.MemRefs)
	}
	if pt.Mapped2M() != 2 {
		t.Errorf("Mapped2M = %d, want 2", pt.Mapped2M())
	}
	// Misaligned map rejected.
	if err := f.Map(pt, base+4096, pagetable.ProtRW); err == nil {
		t.Error("misaligned map should fail")
	}
}

func TestOpen(t *testing.T) {
	phys := mem.New(16 * units.MB)
	fs, _ := Mount(phys, 4, Preallocate)
	created, _ := fs.Create("data", units.PageSize2M)
	opened, err := fs.Open("data")
	if err != nil || opened != created {
		t.Errorf("Open: %v, %p vs %p", err, opened, created)
	}
	if _, err := fs.Open("ghost"); !errors.Is(err, ErrNotExist) {
		t.Errorf("want ErrNotExist, got %v", err)
	}
	if created.Size() != units.PageSize2M || created.Name() != "data" {
		t.Error("file metadata wrong")
	}
}

func TestResizeGrowAndShrink(t *testing.T) {
	phys := mem.New(64 * units.MB)
	fs, err := Mount(phys, 4, Preallocate)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Resize(8); err != nil {
		t.Fatal(err)
	}
	if fs.FreePages() != 8 || phys.Used2M() != 8 {
		t.Errorf("after grow: free %d, phys %d", fs.FreePages(), phys.Used2M())
	}
	if err := fs.Resize(2); err != nil {
		t.Fatal(err)
	}
	if fs.FreePages() != 2 || phys.Used2M() != 2 {
		t.Errorf("after shrink: free %d, phys %d", fs.FreePages(), phys.Used2M())
	}
}

func TestResizeCannotEvictLiveFiles(t *testing.T) {
	phys := mem.New(64 * units.MB)
	fs, _ := Mount(phys, 8, Preallocate)
	if _, err := fs.Create("live", 6*units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	if err := fs.Resize(2); err != nil {
		t.Fatal(err)
	}
	// The quota floors at the 6 in-use pages.
	if got := fs.UsedPages(); got != 6 {
		t.Errorf("used = %d", got)
	}
	if fs.FreePages() != 0 {
		t.Errorf("free = %d, want 0", fs.FreePages())
	}
}

func TestResizeStallsWhenPhysicalMemoryFragmented(t *testing.T) {
	phys := mem.New(8 * units.MB) // four 2MB frames
	fs, _ := Mount(phys, 2, Preallocate)
	// Consume the remaining physical memory outside the pool.
	if _, err := phys.Alloc2M(); err != nil {
		t.Fatal(err)
	}
	if _, err := phys.Alloc2M(); err != nil {
		t.Fatal(err)
	}
	err := fs.Resize(4)
	if err == nil {
		t.Fatal("resize should stall without physical memory")
	}
	// Partial growth is reported in the quota (like nr_hugepages reading
	// back lower than what was written).
	if fs.FreePages() != 2 {
		t.Errorf("free = %d, want the 2 frames it could keep", fs.FreePages())
	}
}
