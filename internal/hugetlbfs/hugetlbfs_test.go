package hugetlbfs

import (
	"errors"
	"testing"

	"hugeomp/internal/faultinject"
	"hugeomp/internal/mem"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

func TestPreallocateReservesImmediately(t *testing.T) {
	phys := mem.New(32 * units.MB)
	fs, err := Mount(phys, 8, Preallocate)
	if err != nil {
		t.Fatal(err)
	}
	if got := phys.Used2M(); got != 8 {
		t.Errorf("physical 2M frames after mount = %d, want 8 (preallocation)", got)
	}
	if fs.FreePages() != 8 || fs.UsedPages() != 0 {
		t.Errorf("free/used = %d/%d", fs.FreePages(), fs.UsedPages())
	}
}

func TestOnDemandReservesLazily(t *testing.T) {
	phys := mem.New(32 * units.MB)
	fs, err := Mount(phys, 8, OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if got := phys.Used2M(); got != 0 {
		t.Errorf("physical 2M frames after on-demand mount = %d, want 0", got)
	}
	if _, err := fs.Create("a", 2*units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	if got := phys.Used2M(); got != 2 {
		t.Errorf("frames after create = %d, want 2", got)
	}
}

func TestMountFailsWhenPhysTooSmall(t *testing.T) {
	phys := mem.New(8 * units.MB)
	if _, err := Mount(phys, 100, Preallocate); err == nil {
		t.Fatal("mount should fail")
	}
	// Rollback: nothing stays reserved.
	if got := phys.Used2M(); got != 0 {
		t.Errorf("frames leaked by failed mount: %d", got)
	}
}

func TestCreateQuotaENOSPC(t *testing.T) {
	phys := mem.New(64 * units.MB)
	fs, _ := Mount(phys, 4, Preallocate)
	if _, err := fs.Create("big", 3*units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	_, err := fs.Create("overflow", 2*units.PageSize2M)
	if !errors.Is(err, ErrNoSpace) {
		t.Errorf("want ErrNoSpace, got %v", err)
	}
	// Failed create must not consume pages.
	if fs.UsedPages() != 3 {
		t.Errorf("used = %d, want 3", fs.UsedPages())
	}
}

func TestCreateBadLength(t *testing.T) {
	phys := mem.New(16 * units.MB)
	fs, _ := Mount(phys, 4, Preallocate)
	for _, n := range []int64{0, -1, units.PageSize4K, units.PageSize2M + 1} {
		if _, err := fs.Create("x", n); !errors.Is(err, ErrBadLength) {
			t.Errorf("Create(%d): want ErrBadLength, got %v", n, err)
		}
	}
}

func TestDuplicateName(t *testing.T) {
	phys := mem.New(16 * units.MB)
	fs, _ := Mount(phys, 4, Preallocate)
	if _, err := fs.Create("f", units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("f", units.PageSize2M); !errors.Is(err, ErrExists) {
		t.Errorf("want ErrExists, got %v", err)
	}
}

func TestRemoveRecycles(t *testing.T) {
	phys := mem.New(16 * units.MB)
	fs, _ := Mount(phys, 4, Preallocate)
	if _, err := fs.Create("f", 4*units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if fs.FreePages() != 4 {
		t.Errorf("free after remove = %d, want 4", fs.FreePages())
	}
	if _, err := fs.Create("g", 4*units.PageSize2M); err != nil {
		t.Errorf("recycled pages unusable: %v", err)
	}
	if err := fs.Remove("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("want ErrNotExist, got %v", err)
	}
}

func TestMapInstalls2MTranslations(t *testing.T) {
	phys := mem.New(16 * units.MB)
	fs, _ := Mount(phys, 4, Preallocate)
	f, err := fs.Create("data", 2*units.PageSize2M)
	if err != nil {
		t.Fatal(err)
	}
	pt := pagetable.New()
	base := units.Addr(64 * units.MB)
	if err := f.Map(pt, base, pagetable.ProtRW); err != nil {
		t.Fatal(err)
	}
	wr, err := pt.Translate(base + 12345)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Entry.Size != units.Size2M {
		t.Errorf("mapping size = %v, want 2MB", wr.Entry.Size)
	}
	if wr.MemRefs != 1 {
		t.Errorf("walk refs = %d, want 1", wr.MemRefs)
	}
	if pt.Mapped2M() != 2 {
		t.Errorf("Mapped2M = %d, want 2", pt.Mapped2M())
	}
	// Misaligned map rejected.
	if err := f.Map(pt, base+4096, pagetable.ProtRW); err == nil {
		t.Error("misaligned map should fail")
	}
}

func TestOpen(t *testing.T) {
	phys := mem.New(16 * units.MB)
	fs, _ := Mount(phys, 4, Preallocate)
	created, _ := fs.Create("data", units.PageSize2M)
	opened, err := fs.Open("data")
	if err != nil || opened != created {
		t.Errorf("Open: %v, %p vs %p", err, opened, created)
	}
	if _, err := fs.Open("ghost"); !errors.Is(err, ErrNotExist) {
		t.Errorf("want ErrNotExist, got %v", err)
	}
	if created.Size() != units.PageSize2M || created.Name() != "data" {
		t.Error("file metadata wrong")
	}
}

func TestResizeGrowAndShrink(t *testing.T) {
	phys := mem.New(64 * units.MB)
	fs, err := Mount(phys, 4, Preallocate)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Resize(8); err != nil {
		t.Fatal(err)
	}
	if fs.FreePages() != 8 || phys.Used2M() != 8 {
		t.Errorf("after grow: free %d, phys %d", fs.FreePages(), phys.Used2M())
	}
	if err := fs.Resize(2); err != nil {
		t.Fatal(err)
	}
	if fs.FreePages() != 2 || phys.Used2M() != 2 {
		t.Errorf("after shrink: free %d, phys %d", fs.FreePages(), phys.Used2M())
	}
}

func TestResizeCannotEvictLiveFiles(t *testing.T) {
	phys := mem.New(64 * units.MB)
	fs, _ := Mount(phys, 8, Preallocate)
	if _, err := fs.Create("live", 6*units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	if err := fs.Resize(2); err != nil {
		t.Fatal(err)
	}
	// The quota floors at the 6 in-use pages.
	if got := fs.UsedPages(); got != 6 {
		t.Errorf("used = %d", got)
	}
	if fs.FreePages() != 0 {
		t.Errorf("free = %d, want 0", fs.FreePages())
	}
}

func TestResizeStallsWhenPhysicalMemoryFragmented(t *testing.T) {
	phys := mem.New(8 * units.MB) // four 2MB frames
	fs, _ := Mount(phys, 2, Preallocate)
	// Consume the remaining physical memory outside the pool.
	if _, err := phys.Alloc2M(); err != nil {
		t.Fatal(err)
	}
	if _, err := phys.Alloc2M(); err != nil {
		t.Fatal(err)
	}
	err := fs.Resize(4)
	if err == nil {
		t.Fatal("resize should stall without physical memory")
	}
	// Partial growth is reported in the quota (like nr_hugepages reading
	// back lower than what was written).
	if fs.FreePages() != 2 {
		t.Errorf("free = %d, want the 2 frames it could keep", fs.FreePages())
	}
}

// TestDoubleReserveTyped: a second Map of a mapped file fails with the typed
// ErrDoubleReserve, and Unmap releases the guard so the file can move.
func TestDoubleReserveTyped(t *testing.T) {
	phys := mem.New(32 * units.MB)
	fs, err := Mount(phys, 4, Preallocate)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("a", 2*units.PageSize2M)
	if err != nil {
		t.Fatal(err)
	}
	pt := pagetable.New()
	if err := f.Map(pt, 0, pagetable.ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := f.Map(pt, units.Addr(16*units.PageSize2M), pagetable.ProtRW); !errors.Is(err, ErrDoubleReserve) {
		t.Fatalf("second Map: want ErrDoubleReserve, got %v", err)
	}
	if err := f.Unmap(pt, 0); err != nil {
		t.Fatal(err)
	}
	if pt.Mapped2M() != 0 {
		t.Fatalf("Mapped2M after Unmap = %d", pt.Mapped2M())
	}
	if err := f.Map(pt, units.Addr(16*units.PageSize2M), pagetable.ProtRW); err != nil {
		t.Fatalf("re-Map after Unmap: %v", err)
	}
}

// TestMapFailureReleasesReserveGuard: a Map that fails mid-way (page-table
// overlap) unwinds cleanly and releases the double-reserve guard.
func TestMapFailureReleasesReserveGuard(t *testing.T) {
	phys := mem.New(32 * units.MB)
	fs, err := Mount(phys, 4, Preallocate)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("a", 2*units.PageSize2M)
	if err != nil {
		t.Fatal(err)
	}
	pt := pagetable.New()
	// Occupy the second slot so page 1 of the file collides.
	if err := pt.Map(units.Addr(units.PageSize2M), units.Size2M, 4096, pagetable.ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := f.Map(pt, 0, pagetable.ProtRW); !errors.Is(err, pagetable.ErrOverlap) {
		t.Fatalf("want ErrOverlap, got %v", err)
	}
	if pt.Mapped2M() != 1 {
		t.Fatalf("unwind left %d 2M mappings, want 1 (the blocker)", pt.Mapped2M())
	}
	if _, err := pt.Unmap(units.Addr(units.PageSize2M), units.Size2M); err != nil {
		t.Fatal(err)
	}
	if err := f.Map(pt, 0, pagetable.ProtRW); err != nil {
		t.Fatalf("Map after clearing blocker: %v (guard not released?)", err)
	}
}

// TestInjectedTakeExhaustion: SiteHugetlbTake makes Create fail with the
// typed ErrNoSpace even though the pool has quota left.
func TestInjectedTakeExhaustion(t *testing.T) {
	phys := mem.New(64 * units.MB)
	fs, err := MountWithFault(phys, 16, Preallocate,
		faultinject.New(5).EnableAt(faultinject.SiteHugetlbTake, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("a", 2*units.PageSize2M); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want injected ErrNoSpace, got %v", err)
	}
	if fs.UsedPages() != 0 {
		t.Fatalf("failed create leaked %d pages", fs.UsedPages())
	}
	// The fault fired exactly once (occurrence 1); a retry succeeds.
	if _, err := fs.Create("a", 2*units.PageSize2M); err != nil {
		t.Fatalf("create after injected exhaustion: %v", err)
	}
}

// TestInjectedReserveFailure: SiteHugetlbReserve fails preallocation at
// mount time and rolls back cleanly.
func TestInjectedReserveFailure(t *testing.T) {
	phys := mem.New(64 * units.MB)
	_, err := MountWithFault(phys, 8, Preallocate,
		faultinject.New(5).EnableAt(faultinject.SiteHugetlbReserve, 3))
	if !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("want injected ErrOutOfMemory, got %v", err)
	}
	if phys.Used2M() != 0 {
		t.Fatalf("failed mount leaked %d frames", phys.Used2M())
	}
}

// TestInjectedResizeStall: SiteHugetlbReserve stalls a Resize growth; the
// quota settles at what was actually reserved.
func TestInjectedResizeStall(t *testing.T) {
	phys := mem.New(64 * units.MB)
	fs, err := Mount(phys, 2, Preallocate)
	if err != nil {
		t.Fatal(err)
	}
	fs.SetFaultPlan(faultinject.New(5).EnableAt(faultinject.SiteHugetlbReserve, 2))
	if err := fs.Resize(8); !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("want injected resize stall, got %v", err)
	}
	if fs.FreePages() != 4 {
		t.Fatalf("FreePages after stalled resize = %d, want 4 (2 + 2 grown before the fault)", fs.FreePages())
	}
}
