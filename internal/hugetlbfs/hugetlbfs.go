// Package hugetlbfs emulates the Linux hugetlbfs filesystem the paper uses
// to back OpenMP application data with 2 MB pages: a pool of large page
// frames is reserved ("preallocated") up front, files are created inside the
// filesystem, and mapping a file installs 2 MB translations in the process
// page table.
//
// The paper's design point (§3.3) is that an OpenMP job owns the node, so
// preallocating the whole pool at startup is both simpler and faster than
// the reservation-based on-demand schemes of Navarro et al.; this package
// supports both so the difference can be measured (see the on-demand
// ablation bench).
package hugetlbfs

import (
	"errors"
	"fmt"
	"sync"

	"hugeomp/internal/faultinject"
	"hugeomp/internal/mem"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

// Errors.
var (
	ErrNoSpace   = errors.New("hugetlbfs: pool exhausted (ENOSPC)")
	ErrExists    = errors.New("hugetlbfs: file exists")
	ErrNotExist  = errors.New("hugetlbfs: file does not exist")
	ErrBadLength = errors.New("hugetlbfs: length must be a positive multiple of 2MB")
	// ErrDoubleReserve flags a second Map of an already-mapped file — the
	// double-reserve bug class that used to silently install overlapping
	// translations or fail half-way with an ErrOverlap from the page table.
	ErrDoubleReserve = errors.New("hugetlbfs: file already mapped (double reserve)")
)

// Mode selects the allocation strategy.
type Mode uint8

const (
	// Preallocate reserves the whole pool at mount time (the paper's
	// design: `echo N > /proc/sys/vm/nr_hugepages` before the run).
	Preallocate Mode = iota
	// OnDemand reserves frames lazily at file-extension time, which can
	// fail mid-run when physical memory has been consumed — the risk the
	// paper's preallocation avoids.
	OnDemand
)

// FS is a mounted hugetlbfs instance.
type FS struct {
	mu    sync.Mutex
	phys  *mem.PhysMem
	mode  Mode
	pool  []uint64 // preallocated free 2MB frames (Preallocate mode)
	quota int      // max pages this mount may use (both modes)
	used  int
	files map[string]*File
	fault *faultinject.Plan // nil = no injection
}

// File is a hugetlbfs file: a sequence of 2 MB frames.
type File struct {
	fs     *FS
	name   string
	frames []uint64
	mapped bool // guards against double-reserve (second Map)
}

// Mount creates a hugetlbfs over phys with a quota of pages 2 MB pages.
// In Preallocate mode every frame is reserved immediately; Mount fails if
// physical memory cannot satisfy the reservation.
func Mount(phys *mem.PhysMem, pages int, mode Mode) (*FS, error) {
	return MountWithFault(phys, pages, mode, nil)
}

// MountWithFault is Mount with a fault plan armed from the first reservation
// on: SiteHugetlbReserve can fail preallocation (as if another job grabbed
// the contiguous memory first), SiteHugetlbTake can exhaust the pool mid-run.
func MountWithFault(phys *mem.PhysMem, pages int, mode Mode, plan *faultinject.Plan) (*FS, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("hugetlbfs: non-positive pool size %d", pages)
	}
	fs := &FS{
		phys:  phys,
		mode:  mode,
		quota: pages,
		files: make(map[string]*File),
		fault: plan,
	}
	if mode == Preallocate {
		fs.pool = make([]uint64, 0, pages)
		for i := 0; i < pages; i++ {
			pfn, err := fs.reserveFrame()
			if err != nil {
				// Roll back: a partial reservation is useless.
				for _, p := range fs.pool {
					phys.Free2M(p)
				}
				return nil, fmt.Errorf("hugetlbfs: preallocating page %d/%d: %w", i+1, pages, err)
			}
			fs.pool = append(fs.pool, pfn)
		}
	}
	return fs, nil
}

// Mode returns the allocation strategy of the mount.
func (fs *FS) Mode() Mode { return fs.mode }

// SetFaultPlan arms (or, with nil, disarms) fault injection for this mount.
func (fs *FS) SetFaultPlan(p *faultinject.Plan) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.fault = p
}

// reserveFrame allocates one 2 MB frame from physical memory for the pool,
// subject to SiteHugetlbReserve injection (emulating contiguous-memory
// allocation failure during `echo N > nr_hugepages`).
func (fs *FS) reserveFrame() (uint64, error) {
	if fs.fault.Should(faultinject.SiteHugetlbReserve) {
		return 0, fmt.Errorf("hugetlbfs: reservation: %w (injected)", mem.ErrOutOfMemory)
	}
	return fs.phys.Alloc2M()
}

// Resize changes the pool quota to pages, the analogue of writing
// /proc/sys/vm/nr_hugepages at runtime. Growing a preallocated mount
// reserves the new frames immediately; shrinking releases free frames but
// never touches pages already consumed by files — the quota cannot drop
// below the in-use count (exactly the kernel's behaviour: surplus pages
// stay until freed).
func (fs *FS) Resize(pages int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if pages < fs.used {
		pages = fs.used // cannot evict live file pages
	}
	if fs.mode == OnDemand {
		fs.quota = pages
		return nil
	}
	have := fs.used + len(fs.pool)
	for have < pages {
		pfn, err := fs.reserveFrame()
		if err != nil {
			fs.quota = have
			return fmt.Errorf("hugetlbfs: resize stalled at %d/%d pages: %w", have, pages, err)
		}
		fs.pool = append(fs.pool, pfn)
		have++
	}
	for have > pages {
		pfn := fs.pool[len(fs.pool)-1]
		fs.pool = fs.pool[:len(fs.pool)-1]
		fs.phys.Free2M(pfn)
		have--
	}
	fs.quota = pages
	return nil
}

// FreePages returns the number of 2 MB pages still available to files.
func (fs *FS) FreePages() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.quota - fs.used
}

// UsedPages returns the number of pages consumed by files.
func (fs *FS) UsedPages() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.used
}

func (fs *FS) takeFrame() (uint64, error) {
	if fs.used >= fs.quota {
		return 0, ErrNoSpace
	}
	// Mid-run exhaustion: another consumer of the pool got there first.
	if fs.fault.Should(faultinject.SiteHugetlbTake) {
		return 0, fmt.Errorf("%w (injected)", ErrNoSpace)
	}
	if fs.mode == Preallocate {
		pfn := fs.pool[len(fs.pool)-1]
		fs.pool = fs.pool[:len(fs.pool)-1]
		fs.used++
		return pfn, nil
	}
	pfn, err := fs.phys.Alloc2M()
	if err != nil {
		return 0, fmt.Errorf("hugetlbfs: on-demand allocation: %w", err)
	}
	fs.used++
	return pfn, nil
}

// Create makes a file of the given length (a positive multiple of 2 MB),
// allocating its frames. It fails with ErrNoSpace when the pool quota is
// exceeded.
func (fs *FS) Create(name string, length int64) (*File, error) {
	if length <= 0 || length%units.PageSize2M != 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, length)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, dup := fs.files[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	n := int(length / units.PageSize2M)
	f := &File{fs: fs, name: name}
	for i := 0; i < n; i++ {
		pfn, err := fs.takeFrame()
		if err != nil {
			fs.releaseFramesLocked(f.frames)
			return nil, fmt.Errorf("hugetlbfs: create %q page %d/%d: %w", name, i+1, n, err)
		}
		f.frames = append(f.frames, pfn)
	}
	fs.files[name] = f
	return f, nil
}

func (fs *FS) releaseFramesLocked(frames []uint64) {
	for _, pfn := range frames {
		if fs.mode == Preallocate {
			fs.pool = append(fs.pool, pfn)
		} else {
			fs.phys.Free2M(pfn)
		}
		fs.used--
	}
}

// Remove deletes a file and returns its frames to the pool.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	fs.releaseFramesLocked(f.frames)
	delete(fs.files, name)
	return nil
}

// Open looks up an existing file.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	return f, nil
}

// Size returns the file length in bytes.
func (f *File) Size() int64 { return int64(len(f.frames)) * units.PageSize2M }

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Map installs the file's pages into pt at va (2 MB aligned) with prot.
// This is the mmap(2) of the emulated filesystem: afterwards every address
// in [va, va+Size) translates through a single-level 2 MB mapping.
func (f *File) Map(pt *pagetable.Table, va units.Addr, prot pagetable.Prot) error {
	if uint64(va)%uint64(units.PageSize2M) != 0 {
		return fmt.Errorf("hugetlbfs: map address %#x not 2MB aligned", va)
	}
	f.fs.mu.Lock()
	if f.mapped {
		f.fs.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDoubleReserve, f.name)
	}
	f.mapped = true
	f.fs.mu.Unlock()
	for i, pfn := range f.frames {
		pva := va + units.Addr(int64(i)*units.PageSize2M)
		if err := pt.MapRetry(pva, units.Size2M, pfn, prot); err != nil {
			// Unwind the partial mapping. An unwind failure means the page
			// table and the file disagree about what this call installed —
			// surface it rather than swallowing it.
			for j := i - 1; j >= 0; j-- {
				if _, uerr := pt.Unmap(va+units.Addr(int64(j)*units.PageSize2M), units.Size2M); uerr != nil {
					err = errors.Join(err, fmt.Errorf("hugetlbfs: unwinding page %d: %w", j, uerr))
				}
			}
			f.fs.mu.Lock()
			f.mapped = false
			f.fs.mu.Unlock()
			return fmt.Errorf("hugetlbfs: map %q page %d: %w", f.name, i, err)
		}
	}
	return nil
}

// Unmap removes the file's pages from pt, releasing the double-reserve guard
// so the file can be mapped elsewhere.
func (f *File) Unmap(pt *pagetable.Table, va units.Addr) error {
	if uint64(va)%uint64(units.PageSize2M) != 0 {
		return fmt.Errorf("hugetlbfs: unmap address %#x not 2MB aligned", va)
	}
	var err error
	for i := range f.frames {
		if _, uerr := pt.Unmap(va+units.Addr(int64(i)*units.PageSize2M), units.Size2M); uerr != nil {
			err = errors.Join(err, fmt.Errorf("hugetlbfs: unmap %q page %d: %w", f.name, i, uerr))
		}
	}
	f.fs.mu.Lock()
	f.mapped = false
	f.fs.mu.Unlock()
	return err
}
