package profile

// Fork returns an independent sharded-counter set with every shard copied in
// ascending shard order — the same deterministic order Total merges in — so
// a forked run resumes from exactly the parent's per-thread counter state.
// Call only at a quiescent point (writers joined).
func (s *ShardedCounters) Fork() *ShardedCounters {
	ns := NewShardedCounters(len(s.shards))
	for i := range s.shards {
		ns.shards[i].c = s.shards[i].c
	}
	return ns
}
