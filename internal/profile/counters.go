// Package profile provides the event counters and report formatting that
// stand in for the paper's use of OProfile. Because the machine is simulated,
// every event is counted exactly rather than statistically sampled, which is
// strictly stronger observability than the paper had.
package profile

import (
	"fmt"
	"strings"
)

// Counters accumulates the hardware events of one execution context. A
// Counters value is owned by a single simulated hardware context (one
// goroutine) while running, so the fields are plain integers; use Add to
// merge per-context counters into aggregates after a region completes.
type Counters struct {
	// Instruction-side events.
	Fetches    uint64 // instruction fetch accesses (per code cache line)
	ITLBL1Miss uint64 // ITLB misses (first level)
	ITLBWalks  uint64 // instruction page-table walks

	// Data-side TLB events, split by page-size class.
	Loads  uint64
	Stores uint64

	DTLBL1Miss4K uint64 // missed the L1 DTLB 4KB-entry class
	DTLBL1Miss2M uint64 // missed the L1 DTLB 2MB-entry class
	DTLBL2Hit    uint64 // L1 miss satisfied by the L2 DTLB
	DTLBWalks4K  uint64 // full page-table walks for 4KB mappings
	DTLBWalks2M  uint64 // full page-table walks for 2MB mappings

	// Data cache events.
	L1Hits   uint64
	L1Misses uint64
	L2Hits   uint64
	L2Misses uint64 // memory accesses

	// SMT events (Xeon hyper-threading model).
	SMTSwitches uint64 // load-stall-triggered context switches
	FlushCycles uint64 // cycles lost to pipeline flushes on switches

	// OS events.
	SoftFaults uint64 // serviced page faults (demand paging, coherence traps)

	// Messaging robustness events (fault-injected loss/duplication; the
	// retries change cycle counts, never numerics).
	MsgRetries uint64 // control messages resent after simulated loss
	MsgDups    uint64 // duplicated control messages detected and dropped

	// Time.
	Busy       uint64 // cycles of useful work + stall cycles, this context
	WalkCyc    uint64 // cycles spent in page walks (subset of Busy)
	MemCyc     uint64 // cycles spent waiting on memory (subset of Busy)
	BarrierCyc uint64 // cycles spent in barrier/reduction communication
}

// DTLBL1Misses returns misses in the first-level DTLB across both page-size
// classes.
func (c Counters) DTLBL1Misses() uint64 { return c.DTLBL1Miss4K + c.DTLBL1Miss2M }

// DTLBWalks returns the total number of data page-table walks; this is the
// figure the paper reports as "Data TLB misses" (an L2 DTLB miss forces a
// walk).
func (c Counters) DTLBWalks() uint64 { return c.DTLBWalks4K + c.DTLBWalks2M }

// Accesses returns the total number of data accesses.
func (c Counters) Accesses() uint64 { return c.Loads + c.Stores }

// Add merges other into c.
func (c *Counters) Add(o *Counters) {
	c.Fetches += o.Fetches
	c.ITLBL1Miss += o.ITLBL1Miss
	c.ITLBWalks += o.ITLBWalks
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.DTLBL1Miss4K += o.DTLBL1Miss4K
	c.DTLBL1Miss2M += o.DTLBL1Miss2M
	c.DTLBL2Hit += o.DTLBL2Hit
	c.DTLBWalks4K += o.DTLBWalks4K
	c.DTLBWalks2M += o.DTLBWalks2M
	c.L1Hits += o.L1Hits
	c.L1Misses += o.L1Misses
	c.L2Hits += o.L2Hits
	c.L2Misses += o.L2Misses
	c.SMTSwitches += o.SMTSwitches
	c.FlushCycles += o.FlushCycles
	c.SoftFaults += o.SoftFaults
	c.MsgRetries += o.MsgRetries
	c.MsgDups += o.MsgDups
	c.Busy += o.Busy
	c.WalkCyc += o.WalkCyc
	c.MemCyc += o.MemCyc
	c.BarrierCyc += o.BarrierCyc
}

// Reset zeroes every counter.
func (c *Counters) Reset() { *c = Counters{} }

// Delta returns the difference c − prev, fieldwise (prev must be an earlier
// snapshot of the same counter set, so every field of c is >= prev's).
func (c Counters) Delta(prev Counters) Counters {
	return Counters{
		Fetches:      c.Fetches - prev.Fetches,
		ITLBL1Miss:   c.ITLBL1Miss - prev.ITLBL1Miss,
		ITLBWalks:    c.ITLBWalks - prev.ITLBWalks,
		Loads:        c.Loads - prev.Loads,
		Stores:       c.Stores - prev.Stores,
		DTLBL1Miss4K: c.DTLBL1Miss4K - prev.DTLBL1Miss4K,
		DTLBL1Miss2M: c.DTLBL1Miss2M - prev.DTLBL1Miss2M,
		DTLBL2Hit:    c.DTLBL2Hit - prev.DTLBL2Hit,
		DTLBWalks4K:  c.DTLBWalks4K - prev.DTLBWalks4K,
		DTLBWalks2M:  c.DTLBWalks2M - prev.DTLBWalks2M,
		L1Hits:       c.L1Hits - prev.L1Hits,
		L1Misses:     c.L1Misses - prev.L1Misses,
		L2Hits:       c.L2Hits - prev.L2Hits,
		L2Misses:     c.L2Misses - prev.L2Misses,
		SMTSwitches:  c.SMTSwitches - prev.SMTSwitches,
		FlushCycles:  c.FlushCycles - prev.FlushCycles,
		SoftFaults:   c.SoftFaults - prev.SoftFaults,
		MsgRetries:   c.MsgRetries - prev.MsgRetries,
		MsgDups:      c.MsgDups - prev.MsgDups,
		Busy:         c.Busy - prev.Busy,
		WalkCyc:      c.WalkCyc - prev.WalkCyc,
		MemCyc:       c.MemCyc - prev.MemCyc,
		BarrierCyc:   c.BarrierCyc - prev.BarrierCyc,
	}
}

// OSCounters aggregates the OS-level robustness events of one run — the
// degraded-path activity that sits below the per-context hardware counters.
// All of it shifts performance only; the numerics contract holds regardless.
type OSCounters struct {
	THPDemotions       uint64 // promoted 2 MB mappings split back to 4 KB
	BrokenReservations uint64 // THP reservations lost (pool dry or injected)
	HugePageFallbacks  uint64 // regions that fell back to 4 KB backing
	PTMapRetries       uint64 // transient page-table map failures absorbed
	DSMRefetches       uint64 // SCASH page fetches repeated after loss
}

// Add merges other into c.
func (c *OSCounters) Add(o OSCounters) {
	c.THPDemotions += o.THPDemotions
	c.BrokenReservations += o.BrokenReservations
	c.HugePageFallbacks += o.HugePageFallbacks
	c.PTMapRetries += o.PTMapRetries
	c.DSMRefetches += o.DSMRefetches
}

// Total returns the sum of all degraded-path events.
func (c OSCounters) Total() uint64 {
	return c.THPDemotions + c.BrokenReservations + c.HugePageFallbacks +
		c.PTMapRetries + c.DSMRefetches
}

// String formats the non-zero fields compactly ("demotions=3 retries=9").
func (c OSCounters) String() string {
	var b strings.Builder
	put := func(name string, v uint64) {
		if v == 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, v)
	}
	put("demotions", c.THPDemotions)
	put("broken-reservations", c.BrokenReservations)
	put("hugepage-fallbacks", c.HugePageFallbacks)
	put("pt-map-retries", c.PTMapRetries)
	put("dsm-refetches", c.DSMRefetches)
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// Report is an OProfile-style textual summary of a Counters aggregate.
// seconds is the simulated wall-clock duration used for rate columns.
func (c Counters) Report(name string, seconds float64) string {
	var b strings.Builder
	rate := func(n uint64) float64 {
		if seconds <= 0 {
			return 0
		}
		return float64(n) / seconds
	}
	fmt.Fprintf(&b, "profile: %s (%.3f simulated seconds)\n", name, seconds)
	fmt.Fprintf(&b, "  data accesses      %14d  (%.3g/s)\n", c.Accesses(), rate(c.Accesses()))
	fmt.Fprintf(&b, "  DTLB L1 misses     %14d  (%.3g/s)\n", c.DTLBL1Misses(), rate(c.DTLBL1Misses()))
	fmt.Fprintf(&b, "  DTLB walks         %14d  (%.3g/s)\n", c.DTLBWalks(), rate(c.DTLBWalks()))
	fmt.Fprintf(&b, "  ITLB misses        %14d  (%.3g/s)\n", c.ITLBL1Miss, rate(c.ITLBL1Miss))
	fmt.Fprintf(&b, "  L1D misses         %14d  (%.3g/s)\n", c.L1Misses, rate(c.L1Misses))
	fmt.Fprintf(&b, "  L2 misses (memory) %14d  (%.3g/s)\n", c.L2Misses, rate(c.L2Misses))
	fmt.Fprintf(&b, "  SMT switches       %14d\n", c.SMTSwitches)
	fmt.Fprintf(&b, "  walk cycles        %14d\n", c.WalkCyc)
	fmt.Fprintf(&b, "  memory cycles      %14d\n", c.MemCyc)
	fmt.Fprintf(&b, "  busy cycles        %14d\n", c.Busy)
	return b.String()
}
