package profile

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddMerges(t *testing.T) {
	a := Counters{Loads: 1, Stores: 2, DTLBWalks4K: 3, Busy: 10, SMTSwitches: 4}
	b := Counters{Loads: 10, Stores: 20, DTLBWalks2M: 5, Busy: 100, FlushCycles: 7}
	a.Add(&b)
	if a.Loads != 11 || a.Stores != 22 || a.Busy != 110 {
		t.Errorf("merged = %+v", a)
	}
	if a.DTLBWalks() != 8 {
		t.Errorf("walks = %d", a.DTLBWalks())
	}
	if a.Accesses() != 33 {
		t.Errorf("accesses = %d", a.Accesses())
	}
}

func TestReset(t *testing.T) {
	c := Counters{Loads: 5, Busy: 9}
	c.Reset()
	if c != (Counters{}) {
		t.Errorf("reset left %+v", c)
	}
}

func TestDerivedCounters(t *testing.T) {
	c := Counters{DTLBL1Miss4K: 3, DTLBL1Miss2M: 4}
	if c.DTLBL1Misses() != 7 {
		t.Error("DTLBL1Misses")
	}
}

func TestReportContainsEverything(t *testing.T) {
	c := Counters{Loads: 100, DTLBWalks4K: 10, ITLBL1Miss: 2, L2Misses: 5, Busy: 1000}
	out := c.Report("CG", 2.0)
	for _, want := range []string{"CG", "DTLB walks", "ITLB misses", "busy cycles", "2.000 simulated seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Zero-duration report must not divide by zero.
	if out := c.Report("x", 0); !strings.Contains(out, "0.000") {
		t.Error("zero-seconds report")
	}
}

// Property: Add is commutative and associative on the counted fields.
func TestAddCommutative(t *testing.T) {
	f := func(l1, l2, w1, w2 uint32) bool {
		a := Counters{Loads: uint64(l1), DTLBWalks4K: uint64(w1)}
		b := Counters{Loads: uint64(l2), DTLBWalks4K: uint64(w2)}
		x := a
		x.Add(&b)
		y := b
		y.Add(&a)
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
