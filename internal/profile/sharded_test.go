package profile

import (
	"sync"
	"testing"
	"testing/quick"
	"unsafe"
)

func TestShardedLayout(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 8, 32} {
		s := NewShardedCounters(n)
		if s.Len() != n {
			t.Fatalf("Len() = %d, want %d", s.Len(), n)
		}
		if !s.Aligned() {
			t.Errorf("n=%d: shard array not 64-byte aligned", n)
		}
		stride := unsafe.Sizeof(counterShard{})
		if stride%64 != 0 {
			t.Fatalf("shard stride %d is not a whole number of cache lines", stride)
		}
		for i := 1; i < n; i++ {
			a := uintptr(unsafe.Pointer(s.Shard(i - 1)))
			b := uintptr(unsafe.Pointer(s.Shard(i)))
			if b-a != stride {
				t.Errorf("n=%d: shards %d and %d are %d bytes apart, want %d", n, i-1, i, b-a, stride)
			}
		}
	}
}

// Property: for any per-thread counter deltas, the sharded merge equals the
// serial accumulation exactly — field for field, with no loss and no double
// count — independent of shard count.
func TestShardedTotalMatchesSerial(t *testing.T) {
	f := func(parts []Counters) bool {
		s := NewShardedCounters(len(parts))
		var want Counters
		for i := range parts {
			*s.Shard(i) = parts[i]
			want.Add(&parts[i])
		}
		return s.Total() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShardedReset(t *testing.T) {
	s := NewShardedCounters(4)
	s.Shard(2).Loads = 7
	s.Reset()
	if s.Total() != (Counters{}) {
		t.Error("Reset left residue in a shard")
	}
}

// TestShardedConcurrentWriters has one goroutine per shard hammering its own
// block while the neighbours do the same; under -race this verifies the
// single-writer discipline needs no atomics, and the post-join Total must see
// every increment.
func TestShardedConcurrentWriters(t *testing.T) {
	const shards, iters = 8, 10000
	s := NewShardedCounters(shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := s.Shard(i)
			for k := 0; k < iters; k++ {
				c.Loads++
				c.L1Hits++
				c.Busy += 3
			}
		}(i)
	}
	wg.Wait()
	got := s.Total()
	if got.Loads != shards*iters || got.L1Hits != shards*iters || got.Busy != 3*shards*iters {
		t.Errorf("merged totals %d/%d/%d, want %d/%d/%d",
			got.Loads, got.L1Hits, got.Busy, shards*iters, shards*iters, 3*shards*iters)
	}
}
