package profile

import "unsafe"

// counterShard is one thread's Counters rounded up to a whole number of
// 64-byte host cache lines, so adjacent shards meet exactly on a line
// boundary and concurrent writers never false-share (layout checked by
// simlint's padding analyzer).
//
//simlint:padded
type counterShard struct {
	c Counters
	_ [(64 - unsafe.Sizeof(Counters{})%64) % 64]byte
}

// ShardedCounters is a set of per-thread Counters blocks laid out so that
// concurrent writers never false-share: the backing array is aligned to a
// 64-byte boundary and each block is a whole number of cache lines. Each
// shard is written by exactly one goroutine while a parallel region runs;
// Total merges the shards in ascending shard order — a deterministic merge
// point (omp region join, SettleForAudit) regardless of which thread
// finished first.
type ShardedCounters struct {
	shards []counterShard
	buf    []byte // keeps the aligned backing array alive
}

// NewShardedCounters allocates n aligned shards, all zero.
func NewShardedCounters(n int) *ShardedCounters {
	if n <= 0 {
		return &ShardedCounters{}
	}
	sz := int(unsafe.Sizeof(counterShard{}))
	buf := make([]byte, n*sz+63)
	off := 0
	if mis := uintptr(unsafe.Pointer(&buf[0])) % 64; mis != 0 {
		off = int(64 - mis)
	}
	shards := unsafe.Slice((*counterShard)(unsafe.Pointer(&buf[off])), n)
	return &ShardedCounters{shards: shards, buf: buf}
}

// Len returns the number of shards.
func (s *ShardedCounters) Len() int { return len(s.shards) }

// Shard returns shard i for its single writer.
func (s *ShardedCounters) Shard(i int) *Counters { return &s.shards[i].c }

// Total merges every shard in ascending shard order. Call only at quiescent
// points (after the writers have joined); the ascending order makes the
// merge deterministic irrespective of thread finish order.
func (s *ShardedCounters) Total() Counters {
	var t Counters
	for i := range s.shards {
		t.Add(&s.shards[i].c)
	}
	return t
}

// Reset zeroes every shard.
func (s *ShardedCounters) Reset() {
	for i := range s.shards {
		s.shards[i].c = Counters{}
	}
}

// Aligned reports whether the shard array actually landed on a 64-byte
// boundary (always true by construction; exported for the layout test).
func (s *ShardedCounters) Aligned() bool {
	if len(s.shards) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&s.shards[0]))%64 == 0
}
