// Package shmem provides the intra-node shared-memory substrate of the
// modified Omni/SCASH runtime: (a) Region, a memory-mapped-file shared
// segment installed into the process page table, and (b) Channel, the
// paper's replacement for the SCore/Myrinet transport — "a simple shared
// memory message passing interface through a file memory mapped into each
// process's space … Multiple outstanding messages may be in flight between a
// set of processes (up to 32 in the current implementation)" (§3.3).
//
// The channel is a single-copy, flag-signalled ring: the sender copies the
// payload into a shared slot and raises its flag; the receiver reads the
// payload in place and clears the flag to recycle the slot.
package shmem

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"hugeomp/internal/mem"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

// Channel geometry, as in the paper.
const (
	MaxInFlight = 32   // outstanding messages per direction
	MaxMsgSize  = 1024 // intra-node messages are small (< 1KB)
)

// Errors.
var (
	ErrMsgTooBig  = errors.New("shmem: message exceeds MaxMsgSize")
	ErrWouldBlock = errors.New("shmem: ring full")
)

// Region is a shared segment backed by a memory-mapped file. The backing
// page size is configurable: the Omni/SCASH global data region is the one
// the paper moves to 2 MB pages, while the message-passing file "uses
// traditional small pages (4KB) and not large pages".
type Region struct {
	Base units.Addr
	Len  int64
	Size units.PageSize
}

// NewRegion allocates physical frames for a shared segment of length bytes
// (rounded up to the page size) and maps it at base in pt.
func NewRegion(phys *mem.PhysMem, pt *pagetable.Table, base units.Addr, length int64,
	size units.PageSize, prot pagetable.Prot) (*Region, error) {
	if uint64(base)%uint64(size.Bytes()) != 0 {
		return nil, fmt.Errorf("shmem: base %#x not %s aligned", base, size)
	}
	length = units.AlignUp(length, size.Bytes())
	n := length / size.Bytes()
	for i := int64(0); i < n; i++ {
		var pfn uint64
		var err error
		if size == units.Size2M {
			pfn, err = phys.Alloc2M()
		} else {
			pfn, err = phys.Alloc4K()
		}
		if err == nil {
			// MapRetry absorbs injected transient map failures; a real
			// conflict (overlap, misalignment) still surfaces immediately.
			err = pt.MapRetry(base+units.Addr(i*size.Bytes()), size, pfn, prot)
		}
		if err != nil {
			return nil, fmt.Errorf("shmem: region page %d/%d: %w", i+1, n, err)
		}
	}
	return &Region{Base: base, Len: length, Size: size}, nil
}

// Contains reports whether va falls inside the region.
func (r *Region) Contains(va units.Addr) bool {
	return va >= r.Base && va < r.Base+units.Addr(r.Len)
}

// End returns one past the last address of the region.
func (r *Region) End() units.Addr { return r.Base + units.Addr(r.Len) }

type slotState = uint32

const (
	slotFree slotState = iota
	slotFull
)

type slot struct {
	flag atomic.Uint32
	n    int
	data [MaxMsgSize]byte
}

// Channel is a single-producer single-consumer message ring between two
// processes (one direction). It performs exactly one copy: sender into the
// shared slot; the receiver's view is the slot itself.
//
// The sender-owned and receiver-owned fields live on separate padded cache
// lines: the counters are plain single-writer words (SPSC — only the sender
// touches simBytes, only the receiver touches msgs), so bumping one no
// longer bounces the line the other side's ring cursor lives on. Read the
// counters only at quiescent points (after the endpoints have joined).
// simlint's padding analyzer checks that the two writers' fields never meet
// on one 64-byte line.
type Channel struct {
	slots [MaxInFlight]slot

	// Sender-owned line: head is the next slot the sender fills, simBytes
	// the payload bytes sent (for the cost model).
	head     atomic.Uint64 //simlint:writer sender
	simBytes uint64        //simlint:writer sender
	_        [48]byte

	// Receiver-owned line: tail is the next slot the receiver drains, msgs
	// the messages delivered.
	tail atomic.Uint64 //simlint:writer receiver
	msgs uint64        //simlint:writer receiver
	_    [48]byte
}

// SimBytes returns the payload bytes that crossed the channel. Quiescent
// read: the sender is the only writer.
func (c *Channel) SimBytes() uint64 { return c.simBytes }

// Msgs returns the number of delivered messages. Quiescent read: the
// receiver is the only writer.
func (c *Channel) Msgs() uint64 { return c.msgs }

// NewChannel creates an empty ring.
func NewChannel() *Channel { return &Channel{} }

// TrySend enqueues data without blocking. It returns ErrWouldBlock when all
// 32 slots are in flight and ErrMsgTooBig for oversized payloads.
func (c *Channel) TrySend(data []byte) error {
	if len(data) > MaxMsgSize {
		return fmt.Errorf("%w: %d bytes", ErrMsgTooBig, len(data))
	}
	h := c.head.Load()
	s := &c.slots[h%MaxInFlight]
	if s.flag.Load() != slotFree {
		return ErrWouldBlock
	}
	s.n = copy(s.data[:], data)
	s.flag.Store(slotFull) // release: publishes the payload
	c.head.Store(h + 1)
	c.simBytes += uint64(len(data))
	return nil
}

// Send enqueues data, spinning until a slot frees up (the real
// implementation busy-waits on the flag word in shared memory; here the
// spin yields to the scheduler so simulated processes on one OS thread make
// progress).
func (c *Channel) Send(data []byte) error {
	for {
		err := c.TrySend(data)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrWouldBlock) {
			return err
		}
		runtime.Gosched()
	}
}

// TryRecv dequeues the next message into buf, returning the payload length
// and true, or false when the ring is empty.
func (c *Channel) TryRecv(buf []byte) (int, bool) {
	t := c.tail.Load()
	s := &c.slots[t%MaxInFlight]
	if s.flag.Load() != slotFull {
		return 0, false
	}
	n := copy(buf, s.data[:s.n])
	s.flag.Store(slotFree) // recycle the slot
	c.tail.Store(t + 1)
	c.msgs++
	return n, true
}

// Recv dequeues the next message, spinning until one arrives.
func (c *Channel) Recv(buf []byte) int {
	for {
		if n, ok := c.TryRecv(buf); ok {
			return n
		}
		runtime.Gosched()
	}
}

// InFlight reports the number of undelivered messages.
func (c *Channel) InFlight() int {
	return int(c.head.Load() - c.tail.Load())
}

// Mesh is the all-pairs channel fabric the runtime builds at startup: one
// Channel per ordered process pair.
type Mesh struct {
	n  int
	ch []*Channel // ch[from*n+to]
}

// NewMesh builds channels for n processes.
func NewMesh(n int) *Mesh {
	m := &Mesh{n: n, ch: make([]*Channel, n*n)}
	for i := range m.ch {
		m.ch[i] = NewChannel()
	}
	return m
}

// Chan returns the channel from process `from` to process `to`.
func (m *Mesh) Chan(from, to int) *Channel { return m.ch[from*m.n+to] }

// N returns the number of endpoints.
func (m *Mesh) N() int { return m.n }
