package shmem

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"hugeomp/internal/mem"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

func TestRegionMapping(t *testing.T) {
	phys := mem.New(16 * units.MB)
	pt := pagetable.New()
	r, err := NewRegion(phys, pt, 0x100000, 10*units.PageSize4K, units.Size4K, pagetable.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(0x100000) || !r.Contains(r.End()-1) || r.Contains(r.End()) {
		t.Error("Contains boundaries wrong")
	}
	if _, err := pt.Access(0x100000+4096*5, true); err != nil {
		t.Errorf("region page not writable: %v", err)
	}
}

func TestRegionLargePages(t *testing.T) {
	phys := mem.New(16 * units.MB)
	pt := pagetable.New()
	_, err := NewRegion(phys, pt, units.Addr(units.PageSize2M), 3*units.PageSize2M, units.Size2M, pagetable.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Mapped2M() != 3 {
		t.Errorf("Mapped2M = %d, want 3", pt.Mapped2M())
	}
}

func TestRegionRoundsUp(t *testing.T) {
	phys := mem.New(16 * units.MB)
	pt := pagetable.New()
	r, err := NewRegion(phys, pt, 0, 100, units.Size4K, pagetable.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len != units.PageSize4K {
		t.Errorf("Len = %d, want one page", r.Len)
	}
}

func TestRegionMisalignedBase(t *testing.T) {
	phys := mem.New(16 * units.MB)
	pt := pagetable.New()
	if _, err := NewRegion(phys, pt, 0x1001, units.PageSize4K, units.Size4K, pagetable.ProtRW); err == nil {
		t.Error("misaligned base accepted")
	}
}

func TestChannelRoundTrip(t *testing.T) {
	c := NewChannel()
	if err := c.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, MaxMsgSize)
	n := c.Recv(buf)
	if string(buf[:n]) != "hello" {
		t.Errorf("got %q", buf[:n])
	}
	if c.Msgs() != 1 || c.SimBytes() != 5 {
		t.Errorf("counters = %d msgs %d bytes", c.Msgs(), c.SimBytes())
	}
}

func TestChannelBackpressureAt32(t *testing.T) {
	c := NewChannel()
	for i := 0; i < MaxInFlight; i++ {
		if err := c.TrySend([]byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := c.TrySend([]byte{99}); !errors.Is(err, ErrWouldBlock) {
		t.Errorf("33rd in-flight message: want ErrWouldBlock, got %v", err)
	}
	if c.InFlight() != MaxInFlight {
		t.Errorf("InFlight = %d", c.InFlight())
	}
	// Draining one slot admits one more.
	buf := make([]byte, 1)
	c.Recv(buf)
	if err := c.TrySend([]byte{99}); err != nil {
		t.Errorf("send after drain: %v", err)
	}
}

func TestChannelRejectsOversized(t *testing.T) {
	c := NewChannel()
	if err := c.TrySend(make([]byte, MaxMsgSize+1)); !errors.Is(err, ErrMsgTooBig) {
		t.Errorf("want ErrMsgTooBig, got %v", err)
	}
}

func TestChannelEmptyRecv(t *testing.T) {
	c := NewChannel()
	if _, ok := c.TryRecv(make([]byte, 8)); ok {
		t.Error("TryRecv on empty ring returned a message")
	}
}

// FIFO property: any sequence of messages is delivered in order and intact.
func TestChannelFIFOProperty(t *testing.T) {
	f := func(msgs [][]byte) bool {
		c := NewChannel()
		done := make(chan bool)
		go func() {
			buf := make([]byte, MaxMsgSize)
			for _, want := range msgs {
				if len(want) > MaxMsgSize {
					want = want[:MaxMsgSize]
				}
				n := c.Recv(buf)
				if !bytes.Equal(buf[:n], want) {
					done <- false
					return
				}
			}
			done <- true
		}()
		for _, m := range msgs {
			if len(m) > MaxMsgSize {
				m = m[:MaxMsgSize]
			}
			if err := c.Send(m); err != nil {
				return false
			}
		}
		return <-done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestChannelConcurrentStress(t *testing.T) {
	c := NewChannel()
	const total = 10000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			msg := fmt.Sprintf("m%06d", i)
			if err := c.Send([]byte(msg)); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	buf := make([]byte, MaxMsgSize)
	for i := 0; i < total; i++ {
		n := c.Recv(buf)
		want := fmt.Sprintf("m%06d", i)
		if string(buf[:n]) != want {
			t.Fatalf("message %d: got %q want %q", i, buf[:n], want)
		}
	}
	wg.Wait()
}

func TestMeshPairwiseChannels(t *testing.T) {
	m := NewMesh(4)
	if m.N() != 4 {
		t.Fatal("N")
	}
	// Distinct channels per ordered pair.
	seen := map[*Channel]bool{}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			ch := m.Chan(i, j)
			if seen[ch] {
				t.Fatalf("channel (%d,%d) aliases another pair", i, j)
			}
			seen[ch] = true
		}
	}
	// Traffic on (0,1) is invisible on (1,0).
	if err := m.Chan(0, 1).Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Chan(1, 0).TryRecv(make([]byte, 8)); ok {
		t.Error("reverse channel received forward traffic")
	}
	if n, ok := m.Chan(0, 1).TryRecv(make([]byte, 8)); !ok || n != 1 {
		t.Error("forward channel lost message")
	}
}
