// Quickstart: the paper's Algorithm 3.1 — an OpenMP parallel sum over a
// large array — run with 4 KB and with 2 MB pages on the simulated Opteron,
// comparing time and DTLB behaviour.
package main

import (
	"fmt"
	"log"

	"hugeomp"
)

func run(policy hugeomp.PagePolicy) (sum float64, secs float64, walks uint64) {
	sys, err := hugeomp.NewSystem(hugeomp.Config{
		Model:  hugeomp.Opteron270(),
		Policy: policy,
	})
	if err != nil {
		log.Fatal(err)
	}
	const n = 1 << 21 // 16 MB of float64
	arr := sys.MustArray("array", n)
	for i := range arr.Data {
		arr.Data[i] = float64(i % 10)
	}
	sys.Seal()

	rt, err := sys.NewRT(4)
	if err != nil {
		log.Fatal(err)
	}
	// #pragma omp parallel for reduction(+:sum)
	sum = rt.ParallelForReduce(nil, n, hugeomp.For{Schedule: hugeomp.Static}, 0,
		func(tid int, c *hugeomp.Context, lo, hi int) float64 {
			arr.LoadRange(c, lo, hi) // drive the simulated TLB and caches
			s := 0.0
			for i := lo; i < hi; i++ {
				s += arr.Data[i]
			}
			return s
		}, func(a, b float64) float64 { return a + b })

	total := rt.TotalCounters()
	return sum, rt.Seconds(), total.DTLBWalks()
}

func main() {
	sum4, secs4, walks4 := run(hugeomp.Policy4K)
	sum2, secs2, walks2 := run(hugeomp.Policy2M)
	if sum4 != sum2 {
		log.Fatalf("results differ: %v vs %v", sum4, sum2)
	}
	fmt.Printf("parallel sum = %.0f (4 threads, Opteron270)\n\n", sum4)
	fmt.Printf("%-10s%14s%14s\n", "pages", "sim time", "DTLB walks")
	fmt.Printf("%-10s%13.5fs%14d\n", "4KB", secs4, walks4)
	fmt.Printf("%-10s%13.5fs%14d\n", "2MB", secs2, walks2)
	fmt.Printf("\nlarge pages: %.1f%% faster, %dx fewer page walks\n",
		100*(secs4-secs2)/secs4, walks4/max(1, walks2))
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
