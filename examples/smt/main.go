// SMT: demonstrates the paper's Xeon hyper-threading findings — scaling
// from 1 to 8 threads on the simulated Xeon, where going from 4 threads (one
// per core) to 8 (two per core) scales poorly because the SMT implementation
// flushes the pipeline on every memory-stall context switch, and large pages
// recover part of the loss by removing TLB-miss stalls.
package main

import (
	"fmt"
	"log"

	"hugeomp"
)

func run(policy hugeomp.PagePolicy, threads int) (secs float64, flushes uint64) {
	sys, err := hugeomp.NewSystem(hugeomp.Config{
		Model:       hugeomp.XeonHT(),
		Policy:      policy,
		SharedBytes: 64 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	const n = 2 << 20 // 16MB
	arr := sys.MustArray("field", n)
	sys.Seal()
	rt, err := sys.NewRT(threads)
	if err != nil {
		log.Fatal(err)
	}
	// A plane-strided sweep (one page per access with 4KB pages).
	const stride = 1536 // 12KB
	lines := n / stride
	for pass := 0; pass < 3; pass++ {
		rt.ParallelFor(nil, lines, hugeomp.For{Schedule: hugeomp.Static},
			func(tid int, c *hugeomp.Context, lo, hi int) {
				for l := lo; l < hi; l++ {
					arr.LoadStride(c, l, stride/8, stride)
					c.Compute(uint64(stride))
				}
			})
	}
	return rt.Seconds(), rt.TotalCounters().SMTSwitches
}

func main() {
	fmt.Println("plane-strided sweeps on the simulated Xeon with hyper-threading")
	fmt.Printf("%-9s%12s%12s%14s%12s\n", "threads", "4KB time", "2MB time", "SMT switches", "2MB gain")
	for _, t := range []int{1, 2, 4, 8} {
		s4, fl := run(hugeomp.Policy4K, t)
		s2, _ := run(hugeomp.Policy2M, t)
		fmt.Printf("%-9d%11.5fs%11.5fs%14d%11.1f%%\n", t, s4, s2, fl, 100*(s4-s2)/s4)
	}
	fmt.Println("\nnote the 4->8 thread step: SMT siblings share one core and every")
	fmt.Println("memory stall flushes the pipeline, so the Xeon scales poorly past")
	fmt.Println("four threads (paper Figure 4); 2MB pages remove the TLB-walk stalls.")
}
