// Stride: sweeps the access stride of a loop over a 24 MB array on the
// simulated Opteron and shows where each page size wins — including the
// crossover the paper warns about in §3.2: "the smaller size of the DTLB for
// large pages might be a limitation in the case where the application makes
// multiple non-contiguous stride accesses with a stride access of larger
// than 2MB" (the Opteron has only 8 large-page DTLB entries and no 2 MB
// backstop in its L2 DTLB).
package main

import (
	"fmt"
	"log"

	"hugeomp"
)

const (
	arrayLen = 3 << 20 // 24 MB of float64 — beyond the Opteron's 16MB 2MB-page reach
	accesses = 1 << 18
)

func run(policy hugeomp.PagePolicy, strideElems int) (secs float64, walks uint64) {
	sys, err := hugeomp.NewSystem(hugeomp.Config{
		Model:       hugeomp.Opteron270(),
		Policy:      policy,
		SharedBytes: 64 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	arr := sys.MustArray("data", arrayLen)
	sys.Seal()
	rt, err := sys.NewRT(4)
	if err != nil {
		log.Fatal(err)
	}
	rt.ParallelFor(nil, accesses, hugeomp.For{Schedule: hugeomp.Static},
		func(tid int, c *hugeomp.Context, lo, hi int) {
			for i := lo; i < hi; i++ {
				// Wrap around the array at the given stride.
				arr.Load(c, (i*strideElems)%arrayLen)
			}
		})
	return rt.Seconds(), rt.TotalCounters().DTLBWalks()
}

func main() {
	fmt.Println("strided loads over a 24MB array, 4 threads, Opteron270")
	fmt.Printf("%-12s%12s%12s%12s%12s%10s\n",
		"stride", "4KB time", "2MB time", "4KB walks", "2MB walks", "winner")
	for _, strideBytes := range []int{64, 512, 4 << 10, 64 << 10, 1 << 20, 3 << 20} {
		s4, w4 := run(hugeomp.Policy4K, strideBytes/8)
		s2, w2 := run(hugeomp.Policy2M, strideBytes/8)
		winner := "2MB"
		if s4 < s2 {
			winner = "4KB" // the paper's §3.2 scenario: stride too large for
			// the 8-entry large-page TLB
		}
		fmt.Printf("%-12s%11.5fs%11.5fs%12d%12d%10s\n",
			human(strideBytes), s4, s2, w4, w2, winner)
	}
}

func human(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
