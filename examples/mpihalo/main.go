// MPI halo exchange: the paper's final future-work item — "evaluate the
// benefit of large pages on the performance of other programming paradigms
// such as MPI". Four MPI-style ranks own slabs of a field and exchange
// multi-megabyte halos through shared-memory staging buffers each step; the
// page policy governs both the private slabs and the message path.
package main

import (
	"fmt"
	"log"

	"hugeomp"
)

const (
	ranks = 4
	slab  = 1 << 19 // elements per rank (4 MB)
	steps = 8
)

func run(policy hugeomp.PagePolicy) (secs float64, walks uint64) {
	sys, err := hugeomp.NewSystem(hugeomp.Config{
		Model:       hugeomp.Opteron270(),
		Policy:      policy,
		SharedBytes: 128 << 20,
		PhysBytes:   1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	field := sys.MustArray("field", ranks*slab)
	halo := sys.MustArray("halo", ranks*slab)
	for i := range field.Data {
		field.Data[i] = float64(i % 100)
	}
	w, err := hugeomp.NewMPIWorld(sys, ranks)
	if err != nil {
		log.Fatal(err)
	}
	w.Run(func(r *hugeomp.MPIRank) {
		mine := r.ID * slab
		for s := 0; s < steps; s++ {
			partner := r.ID ^ 1
			theirs := partner * slab
			r.SendRecv(partner, field, mine, mine+slab, halo, theirs, theirs+slab)
			// Relax the slab against the received halo (compute phase).
			field.LoadRange(r.C, mine, mine+slab)
			for i := 0; i < slab; i++ {
				field.Data[mine+i] = 0.5 * (field.Data[mine+i] + halo.Data[theirs+i])
			}
			field.StoreRange(r.C, mine, mine+slab)
			r.C.Compute(uint64(2 * slab))
			r.Barrier()
		}
		sum := 0.0
		for i := 0; i < slab; i++ {
			sum += field.Data[mine+i]
		}
		_ = r.Allreduce(sum)
	})
	return w.Seconds(), w.RT().TotalCounters().DTLBWalks()
}

func main() {
	fmt.Printf("MPI halo exchange: %d ranks, %dMB slabs, %d steps (simulated Opteron270)\n\n",
		ranks, slab*8>>20, steps)
	fmt.Printf("%-14s%14s%14s\n", "pages", "sim time", "DTLB walks")
	type row struct {
		name   string
		policy hugeomp.PagePolicy
	}
	var base float64
	for _, r := range []row{
		{"4KB", hugeomp.Policy4K},
		{"2MB", hugeomp.Policy2M},
		{"transparent", hugeomp.PolicyTransparent},
	} {
		s, wk := run(r.policy)
		fmt.Printf("%-14s%13.4fs%14d", r.name, s, wk)
		if r.name == "4KB" {
			base = s
		} else {
			fmt.Printf("   (%.1f%% faster than 4KB)", 100*(base-s)/base)
		}
		fmt.Println()
	}
	fmt.Println("\nlarge pages remove the page walks of the copy-heavy message path;")
	fmt.Println("transparent promotion pays first-touch faults and then matches 2MB.")
}
