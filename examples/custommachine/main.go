// Custom machine: platforms are data, not code — this example defines a
// hypothetical processor as JSON (a "what if the Opteron's L2 DTLB held 2MB
// entries?" design question the paper's §3.2 raises), loads it with
// machine.LoadModel, and compares it against the real Opteron on the CG
// workload.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hugeomp"
	"hugeomp/internal/machine"
	"hugeomp/internal/npb"
)

// An Opteron-like chip whose L2 DTLB also holds 512 large-page entries —
// the hardware fix for the paper's observation that "applications with
// stride access larger than 2MB on the Opterons might in fact benefit more
// because of the larger L2DTLB" (which holds no 2MB entries in reality).
const hypothetical = `{
  "name": "Opteron270-Big2MTLB",
  "chips": 2, "coresPerChip": 2, "threadsPerCore": 1,
  "itlb": {"l1": {"e4k": {"entries": 32}, "e2m": {"entries": 8}}},
  "dtlb": {"l1": {"e4k": {"entries": 32}, "e2m": {"entries": 8}},
           "l2": {"e4k": {"entries": 512, "ways": 4},
                  "e2m": {"entries": 512, "ways": 4}}},
  "l1d": {"sizeKB": 64, "ways": 2},
  "l2":  {"sizeKB": 1024, "ways": 16}
}`

func run(model hugeomp.Model, policy hugeomp.PagePolicy) (secs float64, walks uint64) {
	k, err := hugeomp.NewKernel("FT") // the kernel whose footprint exceeds 16MB
	if err != nil {
		log.Fatal(err)
	}
	res, err := hugeomp.RunBenchmark(k, hugeomp.RunConfig{
		Model: model, Threads: 4, Policy: policy, Class: npb.ClassA,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.Seconds, res.Counters.DTLBWalks()
}

func main() {
	path := filepath.Join(os.TempDir(), "hypothetical-opteron.json")
	if err := os.WriteFile(path, []byte(hypothetical), 0o644); err != nil {
		log.Fatal(err)
	}
	custom, err := machine.LoadModel(path)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FT class A (32MB, beyond the real Opteron's 16MB large-page reach), 4 threads")
	fmt.Printf("\n%-26s%12s%14s\n", "machine / pages", "sim time", "DTLB walks")
	for _, m := range []hugeomp.Model{hugeomp.Opteron270(), custom} {
		for _, p := range []hugeomp.PagePolicy{hugeomp.Policy4K, hugeomp.Policy2M} {
			s, w := run(m, p)
			fmt.Printf("%-26s%11.4fs%14d\n", fmt.Sprintf("%s / %v", m.Name, p), s, w)
		}
	}
	fmt.Println("\nadding 2MB entries to the L2 DTLB extends the large-page reach past")
	fmt.Println("FT's working set — the hardware change the paper's analysis points at.")
}
