// CG solver: builds a sparse SPD system with the public API and solves it
// with a hand-written conjugate-gradient loop on the simulated OpenMP
// runtime, reporting how large pages change the gather-dominated matvec.
// This is the paper's headline workload (25% faster at 4 threads with 2 MB
// pages on the Opteron).
package main

import (
	"fmt"
	"log"
	"math"

	"hugeomp"
)

const (
	n     = 1 << 19 // 4 MB vectors: past the 4KB TLB reach, inside the 2MB reach
	nzRow = 4
	iters = 6
)

type system struct {
	sys           *hugeomp.System
	a             *hugeomp.Array
	col           *hugeomp.Ints
	x, z, p, q, r *hugeomp.Array
}

func build(policy hugeomp.PagePolicy) *system {
	sys, err := hugeomp.NewSystem(hugeomp.Config{
		Model:       hugeomp.Opteron270(),
		Policy:      policy,
		SharedBytes: 128 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := &system{sys: sys}
	s.a = sys.MustArray("a", n*nzRow)
	s.col = sys.MustInts("col", n*nzRow)
	s.x = sys.MustArray("x", n)
	s.z = sys.MustArray("z", n)
	s.p = sys.MustArray("p", n)
	s.q = sys.MustArray("q", n)
	s.r = sys.MustArray("r", n)
	sys.Seal()

	// Symmetric-free simple SPD construction: strictly dominant diagonal
	// plus a symmetric pair per row (j, i) handled by mirroring values.
	seed := uint64(42)
	rnd := func() uint64 { seed = seed*6364136223846793005 + 1; return seed >> 16 }
	for i := 0; i < n; i++ {
		base := i * nzRow
		sum := 0.0
		for e := 0; e < nzRow-1; e++ {
			j := int(rnd() % uint64(n))
			v := float64(rnd()%1000)/1000 - 0.5
			s.col.Data[base+e] = int64(j)
			s.a.Data[base+e] = v
			sum += math.Abs(v)
		}
		s.col.Data[base+nzRow-1] = int64(i)
		s.a.Data[base+nzRow-1] = sum + 1
		s.x.Data[i] = 1
	}
	return s
}

// matvec computes q = A p with simulated gathers.
func (s *system) matvec(rt *hugeomp.RT) {
	rt.ParallelFor(nil, n, hugeomp.For{Schedule: hugeomp.Static},
		func(tid int, c *hugeomp.Context, lo, hi int) {
			s.a.LoadRange(c, lo*nzRow, hi*nzRow)
			s.col.LoadRange(c, lo*nzRow, hi*nzRow)
			for i := lo; i < hi; i++ {
				// One bulk indexed access per row (the random gather).
				s.p.Gather(c, s.col.Data[i*nzRow:(i+1)*nzRow])
				sum := 0.0
				for e := i * nzRow; e < (i+1)*nzRow; e++ {
					sum += s.a.Data[e] * s.p.Data[int(s.col.Data[e])]
				}
				s.q.Data[i] = sum
			}
			s.q.StoreRange(c, lo, hi)
		})
}

func (s *system) dot(rt *hugeomp.RT, x, y *hugeomp.Array) float64 {
	return rt.ParallelForReduce(nil, n, hugeomp.For{}, 0,
		func(tid int, c *hugeomp.Context, lo, hi int) float64 {
			x.LoadRange(c, lo, hi)
			y.LoadRange(c, lo, hi)
			v := 0.0
			for i := lo; i < hi; i++ {
				v += x.Data[i] * y.Data[i]
			}
			return v
		}, func(a, b float64) float64 { return a + b })
}

func solve(policy hugeomp.PagePolicy) (residual, secs float64, walks uint64) {
	s := build(policy)
	rt, err := s.sys.NewRT(4)
	if err != nil {
		log.Fatal(err)
	}
	// z=0, r=p=x
	rt.ParallelFor(nil, n, hugeomp.For{}, func(tid int, c *hugeomp.Context, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.z.Data[i] = 0
			s.r.Data[i] = s.x.Data[i]
			s.p.Data[i] = s.x.Data[i]
		}
		s.r.StoreRange(c, lo, hi)
		s.p.StoreRange(c, lo, hi)
	})
	rho := s.dot(rt, s.r, s.r)
	for it := 0; it < iters; it++ {
		s.matvec(rt)
		alpha := rho / s.dot(rt, s.p, s.q)
		rt.ParallelFor(nil, n, hugeomp.For{}, func(tid int, c *hugeomp.Context, lo, hi int) {
			s.z.LoadRange(c, lo, hi)
			s.r.LoadRange(c, lo, hi)
			s.p.LoadRange(c, lo, hi)
			s.q.LoadRange(c, lo, hi)
			for i := lo; i < hi; i++ {
				s.z.Data[i] += alpha * s.p.Data[i]
				s.r.Data[i] -= alpha * s.q.Data[i]
			}
			s.z.StoreRange(c, lo, hi)
			s.r.StoreRange(c, lo, hi)
		})
		rhoNew := s.dot(rt, s.r, s.r)
		beta := rhoNew / rho
		rho = rhoNew
		rt.ParallelFor(nil, n, hugeomp.For{}, func(tid int, c *hugeomp.Context, lo, hi int) {
			for i := lo; i < hi; i++ {
				s.p.Data[i] = s.r.Data[i] + beta*s.p.Data[i]
			}
			s.p.StoreRange(c, lo, hi)
		})
	}
	return math.Sqrt(rho), rt.Seconds(), rt.TotalCounters().DTLBWalks()
}

func main() {
	r4, s4, w4 := solve(hugeomp.Policy4K)
	r2, s2, w2 := solve(hugeomp.Policy2M)
	fmt.Printf("CG on %d unknowns, %d iterations, 4 threads, Opteron270\n\n", n, iters)
	fmt.Printf("%-8s%14s%16s%14s\n", "pages", "residual", "sim time", "DTLB walks")
	fmt.Printf("%-8s%14.3e%15.4fs%14d\n", "4KB", r4, s4, w4)
	fmt.Printf("%-8s%14.3e%15.4fs%14d\n", "2MB", r2, s2, w2)
	fmt.Printf("\n2MB pages are %.1f%% faster on the gather-bound solve\n", 100*(s4-s2)/s4)
}
