module hugeomp

go 1.22
