package hugeomp

import (
	"bytes"
	"strings"
	"testing"
)

// Tests of the public facade: everything a downstream user touches.

func TestFacadeQuickstartFlow(t *testing.T) {
	sys, err := NewSystem(Config{Model: Opteron270(), Policy: Policy2M})
	if err != nil {
		t.Fatal(err)
	}
	arr := sys.MustArray("data", 1<<16)
	for i := range arr.Data {
		arr.Data[i] = 1
	}
	sys.Seal()
	rt, err := sys.NewRT(4)
	if err != nil {
		t.Fatal(err)
	}
	sum := rt.ParallelForReduce(nil, arr.Len(), For{Schedule: Static}, 0,
		func(tid int, c *Context, lo, hi int) float64 {
			arr.LoadRange(c, lo, hi)
			s := 0.0
			for i := lo; i < hi; i++ {
				s += arr.Data[i]
			}
			return s
		}, func(a, b float64) float64 { return a + b })
	if sum != float64(arr.Len()) {
		t.Errorf("sum = %v", sum)
	}
	if rt.Seconds() <= 0 {
		t.Error("no simulated time elapsed")
	}
	if rt.TotalCounters().Loads == 0 {
		t.Error("no loads counted")
	}
}

func TestFacadeModels(t *testing.T) {
	if len(Models()) != 2 {
		t.Fatal("expected two platform models")
	}
	if Opteron270().Name != "Opteron270" || XeonHT().Name != "XeonHT" {
		t.Error("model names")
	}
	if XeonHT().MaxThreads() != 8 || Opteron270().MaxThreads() != 4 {
		t.Error("hardware context counts")
	}
}

func TestFacadeKernels(t *testing.T) {
	if len(Kernels()) != 5 {
		t.Fatal("expected the five NAS kernels")
	}
	k, err := NewKernel("CG")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBenchmark(k, RunConfig{
		Model: Opteron270(), Threads: 2, Policy: Policy4K, Class: ClassT,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != "CG" || res.Cycles == 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestFacadeTable1(t *testing.T) {
	var buf bytes.Buffer
	WriteTable1(&buf)
	if !strings.Contains(buf.String(), "Opteron270") {
		t.Error("Table 1 output incomplete")
	}
}

func TestFacadePaperHeadline(t *testing.T) {
	// The paper's headline at test scale: CG with 2MB pages beats 4KB pages
	// at 4 threads on the Opteron, with a large DTLB-walk reduction.
	run := func(p PagePolicy) Result {
		k, err := NewKernel("CG")
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunBenchmark(k, RunConfig{
			Model: Opteron270(), Threads: 4, Policy: p, Class: ClassS,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r4, r2 := run(Policy4K), run(Policy2M)
	if r2.Cycles >= r4.Cycles {
		t.Errorf("2MB (%d cycles) not faster than 4KB (%d)", r2.Cycles, r4.Cycles)
	}
	if r2.Counters.DTLBWalks()*2 >= r4.Counters.DTLBWalks() {
		t.Errorf("walk reduction too small: %d -> %d",
			r4.Counters.DTLBWalks(), r2.Counters.DTLBWalks())
	}
}
