# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test check lint lint-fix-check chaos serve-soak simd-smoke serve-bench race bench microbench simbench experiments examples fuzz clean

all: build test check

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# simlint enforces the simulator's written contracts: determinism and
# interprocedural determinism taint (no wall clocks, global rand, scheduler
# queries, or order-sensitive map iteration reaching the counters), the
# lock hierarchy across call chains (lockorder), cancellable kernel loops
# (ctxflow), //simlint:atomic field access, and //simlint:padded cache-line
# layout. See docs/LINTING.md.
lint:
	$(GO) run ./cmd/simlint ./...

# Mode-agreement check: the standalone runner and the `go vet -vettool`
# protocol must produce identical findings on the whole tree. vet runs the
# tool once per package including test variants, so its output is deduped;
# both sides are normalised to relative paths before diffing. Also exercises
# the vetx fact plumbing (cross-package summaries through cmd/go's cache).
lint-fix-check:
	$(GO) build -o $(CURDIR)/bin/simlint ./cmd/simlint
	@standalone=$$($(CURDIR)/bin/simlint ./... 2>&1 | sed 's|$(CURDIR)/||g' | sort -u); \
	vettool=$$($(GO) vet -vettool=$(CURDIR)/bin/simlint ./... 2>&1 | grep -v '^#' | sort -u); \
	if [ "$$standalone" != "$$vettool" ]; then \
		echo "simlint standalone and vettool modes disagree:"; \
		echo "--- standalone"; echo "$$standalone"; \
		echo "--- vettool"; echo "$$vettool"; \
		exit 1; \
	fi; \
	echo "lint-fix-check: standalone and vettool agree ($$(echo -n "$$standalone" | grep -c . ) findings)"

# Static and concurrency hygiene for the hot simulator paths: vet, gofmt
# drift (the gofmt guard walks the whole tree, including the simlint test
# corpora under internal/lint/*/testdata), simlint, and the race detector
# over the packages that share state (true-sharing caches, shootdown
# mailbox, parallel harness).
check: lint
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) test -race -short -count=1 ./internal/machine/ ./internal/omp/ ./internal/par/ ./internal/bench/ ./internal/cache/ ./internal/scash/ ./internal/profile/

# Fault-injection soak: 50 seeded, replayable fault plans over CG/MG/SP.
# Every run must pass NPB verification with fault-free numerics, hold all
# internal/check invariants, and replay to bit-identical counters.
chaos:
	$(GO) run ./cmd/chaos

# Service-mode soak: seeded client misbehavior (disconnects, duplicates,
# oversized bodies, injected panics, starved deadlines) against an
# in-process simd server; every answer per config must be bit-identical
# and the typed counters must conserve. See docs/ROBUSTNESS.md.
serve-soak:
	$(GO) run ./cmd/chaos -serve -plans 300

# Short race-mode smoke over the simd service stack (the CI leg): the
# full simsrv suite exercises cancellation, panic quarantine, admission,
# the footprint scheduler and template pool, and cross-process single-flight
# on the shared disk cache — all under the race detector.
simd-smoke:
	$(GO) test -race -count=1 ./internal/simsrv/ ./internal/par/ ./internal/memo/...

# Service-scale throughput floors: a mixed load on a warm-restarted server
# over a populated shared disk cache must beat the no-disk-cache
# single-template baseline by >= 3x and answer >= 90% of warm-restart
# requests from a cache layer. Also run as part of `make bench`.
serve-bench:
	$(GO) run ./cmd/experiments -serve-bench

race:
	$(GO) test -race ./internal/omp/ ./internal/npb/ ./internal/machine/ ./internal/mpi/ ./internal/par/ ./internal/bench/

# Host-side simulator performance (ns per simulated access) -> BENCH_simulator.json
simbench:
	$(GO) run ./cmd/experiments -bench

# Perf regression guard: re-measure the dense and gather fast paths and fail
# if either is >2x slower than the committed BENCH_simulator.json. On hosts
# with >= 4 procs it also enforces the parallel-efficiency floor: 4-thread
# CG must run >= 1.5x faster than 1-thread (skipped with a note on smaller
# hosts, where a time-sliced team cannot speed up). The service-scale floors
# (>=3x warm-restart throughput, >=90% cache-answered) run here too.
bench:
	$(GO) run ./cmd/experiments -bench-baseline

microbench:
	$(GO) test -bench=. -benchmem ./...

# Full class-A reproduction of every table and figure (minutes).
experiments:
	$(GO) run ./cmd/experiments -class A
	$(GO) run ./cmd/experiments -class A -only extensions

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cgsolver
	$(GO) run ./examples/stride
	$(GO) run ./examples/smt
	$(GO) run ./examples/mpihalo

fuzz:
	$(GO) test -fuzz FuzzHierarchy -fuzztime 30s ./internal/tlb/
	$(GO) test -fuzz FuzzAllocator -fuzztime 30s ./internal/scash/
	$(GO) test -fuzz FuzzGatherRange -fuzztime 30s ./internal/machine/
	$(GO) test -fuzz FuzzCounters -fuzztime 30s ./internal/check/
	$(GO) test -fuzz FuzzForkEquivalence -fuzztime 30s ./internal/machine/

clean:
	$(GO) clean ./...
