# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench experiments examples fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/omp/ ./internal/npb/ ./internal/machine/ ./internal/mpi/

bench:
	$(GO) test -bench=. -benchmem ./...

# Full class-A reproduction of every table and figure (minutes).
experiments:
	$(GO) run ./cmd/experiments -class A
	$(GO) run ./cmd/experiments -class A -only extensions

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cgsolver
	$(GO) run ./examples/stride
	$(GO) run ./examples/smt
	$(GO) run ./examples/mpihalo

fuzz:
	$(GO) test -fuzz FuzzHierarchy -fuzztime 30s ./internal/tlb/
	$(GO) test -fuzz FuzzAllocator -fuzztime 30s ./internal/scash/

clean:
	$(GO) clean ./...
